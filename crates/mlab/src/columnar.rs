//! The `.ndtc` binary columnar shard container.
//!
//! NDT shards are the largest artifact in a dump tree — at real scale the
//! M-Lab corpus is multi-terabyte — and the text shards spend their cold
//! load almost entirely in per-row float/date parsing. `.ndtc` stores one
//! shard's rows as per-column blocks instead, so a cold load is bounded
//! by disk bandwidth and a handful of `memcpy`-shaped decodes.
//!
//! Two container versions exist. Version 1 (the PR 5 layout) is a single
//! monolithic column group:
//!
//! ```text
//! offset 0   magic  "NDTC"                  (4 bytes)
//! offset 4   version                        (1 byte, = 1)
//!            row count                      (uvarint)
//!            7 column blocks, fixed order, each:
//!              tag                          (1 byte)
//!              payload length in bytes      (uvarint)
//!              payload                      (see below)
//! footer     row count                     (u64 little-endian)
//!            CRC-32 of every preceding byte (u32 little-endian)
//! ```
//!
//! Version 2 — what the writer emits today — splits the rows into
//! independently decodable row groups and appends a footer index so a
//! reader can seek straight to the blocks a query touches:
//!
//! ```text
//! offset 0   magic  "NDTC"                  (4 bytes)
//! offset 4   version                        (1 byte, = 2)
//!            N row-group blocks, back to back, each:
//!              row count                    (uvarint)
//!              7 column groups, fixed order, tagged and
//!              length-prefixed exactly like v1 (dictionaries and the
//!              date delta chain restart per block)
//! index      block count                    (uvarint)
//!            per block:
//!              byte offset from file start  (uvarint)
//!              byte length                  (uvarint)
//!              row count                    (uvarint)
//!              min date, days since epoch   (ivarint)
//!              max date, days since epoch   (ivarint)
//!              CRC-32 of the block bytes    (u32 little-endian)
//!              country summary: count       (uvarint)
//!                then one 2-byte alpha-2 code per distinct country
//! tail       index length in bytes          (u32 little-endian)
//!            total row count                (u64 little-endian)
//!            CRC-32 of index + tail prefix  (u32 little-endian)
//! ```
//!
//! The tail CRC covers `bytes[index_start .. len-4]` — the index plus the
//! index-length and row-count fields — so [`ColumnReader::open`] can
//! validate everything it trusts for seeking *without* touching block
//! bytes; each block carries its own CRC, verified only when that block
//! is actually decoded. That is what makes a single-(country, month)
//! query cost proportional to the rows it touches rather than to the
//! archive size.
//!
//! Column payloads (`n` = row count of the enclosing group):
//!
//! * **dates** (tag 1) — days-since-epoch, delta-encoded: the first value
//!   then successive differences, each a zigzag varint.
//! * **country** (tag 2) — dictionary-encoded: dict size (uvarint), dict
//!   entries (2 bytes of alpha-2 each, first-appearance order), then `n`
//!   uvarint dict indices.
//! * **asn** (tag 3) — dictionary-encoded: dict size (uvarint), dict
//!   entries (uvarint raw ASN each), then `n` uvarint dict indices.
//! * **download / upload / min_rtt / loss** (tags 4–7) — `n` IEEE-754
//!   doubles, fixed-width little-endian. Bit patterns are preserved
//!   exactly, so the order-sensitive P² estimators observe the very same
//!   values the text path parses from shortest-roundtrip decimal.
//!
//! **Format evolution rule:** readers reject any version byte other than
//! [`VERSION_V1`] or [`VERSION_V2`]. A layout change — new column,
//! different encoding, moved footer — must add a new version; the magic
//! never changes meaning, and old versions stay readable (v1 containers
//! decode forever). The `container_header_is_frozen` test pins the header
//! bytes of both writers so a magic edit without a version bump fails CI.
//!
//! Every decode error is a typed [`Error`](lacnet_types::Error) — wrong
//! magic, unknown version, truncated block, checksum mismatch, row-range
//! violations — never a panic.

use crate::ndt::NdtTest;
use lacnet_types::codec::{
    crc32, f64_at, put_f64, put_ivarint, put_u32, put_u64, put_uvarint, read_f64, read_ivarint,
    read_u32, read_u64, read_uvarint,
};
use lacnet_types::{Asn, CountryCode, Date, Error, Result};
use std::io::Read;

/// The container magic, `NDTC`.
pub const MAGIC: [u8; 4] = *b"NDTC";

/// The legacy single-group container version (still fully readable).
pub const VERSION_V1: u8 = 1;

/// The indexed row-group container version — what [`encode_v2`] writes.
pub const VERSION_V2: u8 = 2;

/// Bytes of the fixed v1 footer: row count (u64) + CRC-32 (u32).
const FOOTER_LEN: usize = 12;

/// Bytes of the fixed v2 tail: index length (u32) + row count (u64) +
/// index CRC-32 (u32).
const V2_TAIL_LEN: usize = 16;

/// Header bytes shared by both versions: magic + version byte.
const HEADER_LEN: usize = 5;

/// Rows per v2 block when the writer isn't told otherwise. Small enough
/// that a month shard at paper scale splits into many prunable groups,
/// large enough that per-block dictionary and index overhead stays under
/// a percent of the payload.
pub const DEFAULT_BLOCK_ROWS: usize = 2048;

/// Column tags, in the order blocks appear in the container.
const TAGS: [u8; 7] = [1, 2, 3, 4, 5, 6, 7];

/// On-disk NDT shard encodings `lacnet-gen` can write and
/// `ArchiveWorld` can read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardFormat {
    /// One `to_row` line per test (`.tsv`) — the native text format.
    #[default]
    Text,
    /// The `.ndtc` columnar container defined by this module.
    Columnar,
}

impl ShardFormat {
    /// The shard file extension (without the dot).
    pub fn extension(self) -> &'static str {
        match self {
            ShardFormat::Text => "tsv",
            ShardFormat::Columnar => "ndtc",
        }
    }

    /// Parse a CLI flag value (`text` / `columnar`).
    pub fn parse_flag(s: &str) -> Option<ShardFormat> {
        match s {
            "text" => Some(ShardFormat::Text),
            "columnar" => Some(ShardFormat::Columnar),
            _ => None,
        }
    }
}

impl std::fmt::Display for ShardFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ShardFormat::Text => "text",
            ShardFormat::Columnar => "columnar",
        })
    }
}

/// A bitset naming which of the seven `.ndtc` columns a caller wants
/// decoded. Endpoints declare their needs with this in
/// `core::registry`, and [`ColumnReader::read`] skips the payload bytes
/// of every column not in the set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ColumnSet(u8);

impl ColumnSet {
    /// No columns at all.
    pub const NONE: ColumnSet = ColumnSet(0);
    /// Test dates (tag 1).
    pub const DATES: ColumnSet = ColumnSet(1 << 0);
    /// Client countries (tag 2).
    pub const COUNTRIES: ColumnSet = ColumnSet(1 << 1);
    /// Client ASNs (tag 3).
    pub const ASNS: ColumnSet = ColumnSet(1 << 2);
    /// Downstream throughput (tag 4).
    pub const DOWNLOAD: ColumnSet = ColumnSet(1 << 3);
    /// Upstream throughput (tag 5).
    pub const UPLOAD: ColumnSet = ColumnSet(1 << 4);
    /// Minimum RTT (tag 6).
    pub const MIN_RTT: ColumnSet = ColumnSet(1 << 5);
    /// Loss rate (tag 7).
    pub const LOSS: ColumnSet = ColumnSet(1 << 6);
    /// Every column — a full decode.
    pub const ALL: ColumnSet = ColumnSet(0x7f);
    /// What [`MonthlyAggregator::observe_columns`] reads: countries,
    /// dates and download.
    ///
    /// [`MonthlyAggregator::observe_columns`]: crate::aggregate::MonthlyAggregator::observe_columns
    pub const AGGREGATE: ColumnSet =
        ColumnSet::DATES.union(ColumnSet::COUNTRIES.union(ColumnSet::DOWNLOAD));

    /// The union of two sets.
    pub const fn union(self, other: ColumnSet) -> ColumnSet {
        ColumnSet(self.0 | other.0)
    }

    /// Whether every column in `other` is in `self`.
    pub const fn contains(self, other: ColumnSet) -> bool {
        self.0 & other.0 == other.0
    }

    /// Whether the set names no columns.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// How many columns the set names.
    pub const fn count(self) -> u32 {
        self.0.count_ones()
    }
}

/// What a [`ColumnReader`] query asks for: which columns to decode, and
/// optional block-pruning predicates on the footer index. Predicates are
/// conservative — a block is decoded iff its index entry *may* contain
/// matching rows — so row-level filtering (if any) stays the caller's
/// job, exactly as with the text path.
#[derive(Debug, Clone, Default)]
pub struct ColumnSelection {
    columns: ColumnSet,
    date_range: Option<(i64, i64)>,
    country: Option<CountryCode>,
}

impl ColumnSelection {
    /// Decode every block and every column (the v1-equivalent read).
    pub fn all() -> ColumnSelection {
        ColumnSelection::columns(ColumnSet::ALL)
    }

    /// Decode `columns` from every block.
    pub fn columns(columns: ColumnSet) -> ColumnSelection {
        ColumnSelection {
            columns,
            date_range: None,
            country: None,
        }
    }

    /// Keep only blocks whose date span intersects `[lo, hi]` (inclusive).
    pub fn with_dates(mut self, lo: Date, hi: Date) -> ColumnSelection {
        self.date_range = Some((lo.days_since_epoch(), hi.days_since_epoch()));
        self
    }

    /// Keep only blocks whose country dictionary contains `cc`.
    pub fn with_country(mut self, cc: CountryCode) -> ColumnSelection {
        self.country = Some(cc);
        self
    }

    /// The columns this selection decodes.
    pub fn column_set(&self) -> ColumnSet {
        self.columns
    }

    /// Whether a block with this index entry can hold matching rows.
    fn matches(&self, entry: &BlockEntry) -> bool {
        if let Some((lo, hi)) = self.date_range {
            if entry.max_days < lo || entry.min_days > hi {
                return false;
            }
        }
        if let Some(cc) = self.country {
            if !entry.countries.contains(&cc) {
                return false;
            }
        }
        true
    }
}

/// Decode-side accounting from [`ColumnReader::read_counted`]: how much
/// of the container a query actually touched. Tests pin selectivity with
/// this, and the serve layer surfaces it per query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadStats {
    /// Blocks listed in the footer index.
    pub blocks_total: usize,
    /// Blocks whose index entry matched the selection and were decoded.
    pub blocks_decoded: usize,
    /// Column payload bytes actually decoded (skipped columns and
    /// pruned blocks contribute nothing).
    pub bytes_decoded: usize,
    /// Column payloads decoded across all decoded blocks.
    pub columns_decoded: usize,
}

impl ReadStats {
    /// Merge another container's stats into this one (archive sweeps).
    pub fn absorb(&mut self, other: ReadStats) {
        self.blocks_total += other.blocks_total;
        self.blocks_decoded += other.blocks_decoded;
        self.bytes_decoded += other.bytes_decoded;
        self.columns_decoded += other.columns_decoded;
    }
}

/// One decoded shard, column-major. Rows are reconstructed on demand by
/// [`ColumnBatch::row`] / [`ColumnBatch::iter`]; the aggregation fast
/// path ([`MonthlyAggregator::observe_columns`]) reads the `countries`,
/// `dates` and `download` columns directly and never materializes rows.
///
/// A selectively decoded batch holds empty vectors for columns the
/// [`ColumnSelection`] skipped; [`ColumnBatch::len`] reports the row
/// count of the populated columns.
///
/// [`MonthlyAggregator::observe_columns`]: crate::aggregate::MonthlyAggregator::observe_columns
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ColumnBatch {
    dates: Vec<Date>,
    countries: Vec<CountryCode>,
    asns: Vec<Asn>,
    download: Vec<f64>,
    upload: Vec<f64>,
    min_rtt: Vec<f64>,
    loss: Vec<f64>,
}

impl ColumnBatch {
    /// Build a batch from row-major tests.
    pub fn from_rows(rows: &[NdtTest]) -> ColumnBatch {
        let mut b = ColumnBatch::default();
        for t in rows {
            b.dates.push(t.date);
            b.countries.push(t.country);
            b.asns.push(t.asn);
            b.download.push(t.download_mbps);
            b.upload.push(t.upload_mbps);
            b.min_rtt.push(t.min_rtt_ms);
            b.loss.push(t.loss_rate);
        }
        b
    }

    /// Number of rows. Skipped columns in a selective decode are empty,
    /// so the row count is the longest populated column.
    pub fn len(&self) -> usize {
        self.dates
            .len()
            .max(self.countries.len())
            .max(self.asns.len())
            .max(self.download.len())
            .max(self.upload.len())
            .max(self.min_rtt.len())
            .max(self.loss.len())
    }

    /// Whether the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reconstruct row `i`. Panics if a needed column was not decoded —
    /// row materialization requires a full ([`ColumnSelection::all`])
    /// read.
    pub fn row(&self, i: usize) -> NdtTest {
        NdtTest {
            date: self.dates[i],
            country: self.countries[i],
            asn: self.asns[i],
            download_mbps: self.download[i],
            upload_mbps: self.upload[i],
            min_rtt_ms: self.min_rtt[i],
            loss_rate: self.loss[i],
        }
    }

    /// Iterate the rows in order.
    pub fn iter(&self) -> impl Iterator<Item = NdtTest> + '_ {
        (0..self.len()).map(|i| self.row(i))
    }

    /// The test dates, row order.
    pub fn dates(&self) -> &[Date] {
        &self.dates
    }

    /// The client countries, row order.
    pub fn countries(&self) -> &[CountryCode] {
        &self.countries
    }

    /// The client ASNs, row order.
    pub fn asns(&self) -> &[Asn] {
        &self.asns
    }

    /// The downstream throughputs (Mbit/s), row order.
    pub fn download(&self) -> &[f64] {
        &self.download
    }

    /// The upstream throughputs (Mbit/s), row order.
    pub fn upload(&self) -> &[f64] {
        &self.upload
    }

    /// The minimum RTTs (ms), row order.
    pub fn min_rtt(&self) -> &[f64] {
        &self.min_rtt
    }

    /// The loss rates, row order.
    pub fn loss(&self) -> &[f64] {
        &self.loss
    }

    /// Column-wise mirror of [`NdtTest::validate`]: the decoder applies
    /// exactly the range checks the text parser applies per row, so a
    /// corrupt container cannot smuggle out-of-range values past the
    /// aggregation that a corrupt text shard would have rejected.
    fn validate(&self) -> Result<()> {
        if self.download.iter().chain(&self.upload).any(|&v| v < 0.0) {
            return Err(Error::invalid("negative throughput"));
        }
        if self.min_rtt.iter().any(|&v| v < 0.0) {
            return Err(Error::invalid("negative RTT"));
        }
        if self.loss.iter().any(|&v| !(0.0..=1.0).contains(&v)) {
            return Err(Error::invalid("loss rate outside [0,1]"));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Column payload codecs, shared by the v1 and v2 writers/readers. The
// v1 byte stream is unchanged: these are the PR 5 encoders factored out
// so a v2 row group is literally a v1 column section over a row slice.
// ---------------------------------------------------------------------

/// Delta-encode days-since-epoch. The delta chain starts from 0, so v2
/// row groups (which call this per block) restart cleanly.
fn encode_date_payload(dates: &[Date], payload: &mut Vec<u8>) {
    let mut prev = 0i64;
    for d in dates {
        let days = d.days_since_epoch();
        put_ivarint(payload, days - prev);
        prev = days;
    }
}

/// Dictionary-encode alpha-2 codes, first-appearance order. Returns the
/// dictionary so the v2 writer can summarize it in the footer index.
fn encode_country_payload(countries: &[CountryCode], payload: &mut Vec<u8>) -> Vec<CountryCode> {
    let mut dict: Vec<CountryCode> = Vec::new();
    let mut indices = Vec::with_capacity(countries.len());
    for &cc in countries {
        let idx = dict.iter().position(|&d| d == cc).unwrap_or_else(|| {
            dict.push(cc);
            dict.len() - 1
        });
        indices.push(idx as u64);
    }
    put_uvarint(payload, dict.len() as u64);
    for cc in &dict {
        payload.extend_from_slice(cc.as_str().as_bytes());
    }
    for &i in &indices {
        put_uvarint(payload, i);
    }
    dict
}

/// Dictionary-encode raw ASNs, first-appearance order.
fn encode_asn_payload(asns: &[Asn], payload: &mut Vec<u8>) {
    let mut dict: Vec<Asn> = Vec::new();
    let mut indices = Vec::with_capacity(asns.len());
    for &asn in asns {
        let idx = dict.iter().position(|&d| d == asn).unwrap_or_else(|| {
            dict.push(asn);
            dict.len() - 1
        });
        indices.push(idx as u64);
    }
    put_uvarint(payload, dict.len() as u64);
    for asn in &dict {
        put_uvarint(payload, u64::from(asn.raw()));
    }
    for &i in &indices {
        put_uvarint(payload, i);
    }
}

/// Fixed-width little-endian doubles.
fn encode_float_payload(col: &[f64], payload: &mut Vec<u8>) {
    for &v in col {
        put_f64(payload, v);
    }
}

/// Decode the date column into a caller-owned vector (cleared first).
/// Writing into reusable scratch is what keeps the borrowed scan free of
/// per-block allocations once the vector's capacity is warm.
fn decode_date_payload_into(block: &[u8], n: usize, out: &mut Vec<Date>) -> Result<()> {
    out.clear();
    let mut pos = 0;
    let mut days = 0i64;
    for _ in 0..n {
        let delta = read_ivarint(block, &mut pos)?;
        days = days
            .checked_add(delta)
            .ok_or_else(|| Error::parse("ndtc date delta (overflow)", ""))?;
        // Keep reconstruction within the civil-date range the rest of
        // the pipeline uses; wildly out-of-range days mean corruption.
        if days.abs() > 4_000_000 {
            return Err(Error::parse("ndtc date (outside civil range)", ""));
        }
        out.push(Date::from_days_since_epoch(days));
    }
    if pos != block.len() {
        return Err(Error::parse("ndtc date column (trailing bytes)", ""));
    }
    Ok(())
}

fn decode_date_payload(block: &[u8], n: usize) -> Result<Vec<Date>> {
    let mut out = Vec::with_capacity(n.min(1 << 20));
    decode_date_payload_into(block, n, &mut out)?;
    Ok(out)
}

/// Decode the country column into caller-owned value and dictionary
/// vectors (both cleared first); the dictionary is exposed so v2 readers
/// can cross-check the footer index's country summary.
fn decode_country_payload_into(
    block: &[u8],
    n: usize,
    out: &mut Vec<CountryCode>,
    dict: &mut Vec<CountryCode>,
) -> Result<()> {
    out.clear();
    dict.clear();
    let mut pos = 0;
    let dict_len = read_uvarint(block, &mut pos)? as usize;
    for _ in 0..dict_len {
        let end = pos
            .checked_add(2)
            .filter(|&e| e <= block.len())
            .ok_or_else(|| Error::parse("ndtc country dict (truncated)", ""))?;
        let s = std::str::from_utf8(&block[pos..end])
            .map_err(|_| Error::parse("ndtc country dict entry", ""))?;
        dict.push(CountryCode::new(s)?);
        pos = end;
    }
    for _ in 0..n {
        let idx = read_uvarint(block, &mut pos)? as usize;
        let &cc = dict
            .get(idx)
            .ok_or_else(|| Error::parse("ndtc country dict index", ""))?;
        out.push(cc);
    }
    if pos != block.len() {
        return Err(Error::parse("ndtc country column (trailing bytes)", ""));
    }
    Ok(())
}

fn decode_country_payload(block: &[u8], n: usize) -> Result<(Vec<CountryCode>, Vec<CountryCode>)> {
    let mut out = Vec::with_capacity(n.min(1 << 20));
    let mut dict = Vec::new();
    decode_country_payload_into(block, n, &mut out, &mut dict)?;
    Ok((out, dict))
}

/// Decode the ASN column into caller-owned value and dictionary vectors
/// (both cleared first).
fn decode_asn_payload_into(
    block: &[u8],
    n: usize,
    out: &mut Vec<Asn>,
    dict: &mut Vec<Asn>,
) -> Result<()> {
    out.clear();
    dict.clear();
    let mut pos = 0;
    let dict_len = read_uvarint(block, &mut pos)? as usize;
    for _ in 0..dict_len {
        let raw = read_uvarint(block, &mut pos)?;
        let raw = u32::try_from(raw).map_err(|_| Error::parse("ndtc asn dict entry", ""))?;
        dict.push(Asn(raw));
    }
    for _ in 0..n {
        let idx = read_uvarint(block, &mut pos)? as usize;
        let &asn = dict
            .get(idx)
            .ok_or_else(|| Error::parse("ndtc asn dict index", ""))?;
        out.push(asn);
    }
    if pos != block.len() {
        return Err(Error::parse("ndtc asn column (trailing bytes)", ""));
    }
    Ok(())
}

fn decode_asn_payload(block: &[u8], n: usize) -> Result<Vec<Asn>> {
    let mut out = Vec::with_capacity(n.min(1 << 20));
    let mut dict = Vec::new();
    decode_asn_payload_into(block, n, &mut out, &mut dict)?;
    Ok(out)
}

fn decode_float_payload(block: &[u8], n: usize) -> Result<Vec<f64>> {
    if block.len() != n * 8 {
        return Err(Error::parse("ndtc float column (wrong size)", ""));
    }
    let mut out = Vec::with_capacity(n);
    let mut pos = 0;
    for _ in 0..n {
        out.push(read_f64(block, &mut pos)?);
    }
    Ok(out)
}

/// Append the seven tagged, length-prefixed column sections for a row
/// slice of `batch` — the shared body layout of a v1 container and of
/// one v2 row group. Returns the country dictionary of the slice.
fn encode_column_sections(
    batch: &ColumnBatch,
    range: std::ops::Range<usize>,
    out: &mut Vec<u8>,
) -> Vec<CountryCode> {
    let section = |out: &mut Vec<u8>, tag: u8, payload: &[u8]| {
        out.push(tag);
        put_uvarint(out, payload.len() as u64);
        out.extend_from_slice(payload);
    };
    let mut payload = Vec::new();
    encode_date_payload(&batch.dates[range.clone()], &mut payload);
    section(out, TAGS[0], &payload);

    payload.clear();
    let dict = encode_country_payload(&batch.countries[range.clone()], &mut payload);
    section(out, TAGS[1], &payload);

    payload.clear();
    encode_asn_payload(&batch.asns[range.clone()], &mut payload);
    section(out, TAGS[2], &payload);

    for (tag, col) in [
        (TAGS[3], &batch.download),
        (TAGS[4], &batch.upload),
        (TAGS[5], &batch.min_rtt),
        (TAGS[6], &batch.loss),
    ] {
        payload.clear();
        encode_float_payload(&col[range.clone()], &mut payload);
        section(out, tag, &payload);
    }
    dict
}

/// Slice the seven tagged column sections starting at `*pos`, advancing
/// past them. Shared by the v1 body walk and the per-group v2 walk.
fn split_column_sections<'b>(buf: &'b [u8], pos: &mut usize) -> Result<[&'b [u8]; 7]> {
    let mut sections: [&[u8]; 7] = [&[]; 7];
    for (slot, &tag) in sections.iter_mut().zip(&TAGS) {
        let &got = buf
            .get(*pos)
            .ok_or_else(|| Error::parse("ndtc column block (truncated)", ""))?;
        *pos += 1;
        if got != tag {
            return Err(Error::parse("ndtc column tag", &got.to_string()));
        }
        let len = read_uvarint(buf, pos)?;
        let len = usize::try_from(len).map_err(|_| Error::parse("ndtc block length", ""))?;
        let end = pos
            .checked_add(len)
            .filter(|&e| e <= buf.len())
            .ok_or_else(|| Error::parse("ndtc column block (truncated)", ""))?;
        *slot = &buf[*pos..end];
        *pos = end;
    }
    Ok(sections)
}

// ---------------------------------------------------------------------
// v1 writer/reader (legacy, byte-frozen)
// ---------------------------------------------------------------------

/// Encode rows as one legacy (v1) `.ndtc` container. Kept for the
/// compatibility matrix and `lacnet-gen --ndtc-v1`; new dumps use
/// [`encode_rows_v2`].
pub fn encode_rows(rows: &[NdtTest]) -> Vec<u8> {
    encode(&ColumnBatch::from_rows(rows))
}

/// Encode a column batch as one legacy (v1) `.ndtc` container.
pub fn encode(batch: &ColumnBatch) -> Vec<u8> {
    let n = batch.len();
    let mut out = Vec::with_capacity(64 + n * 36);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION_V1);
    put_uvarint(&mut out, n as u64);
    encode_column_sections(batch, 0..n, &mut out);
    // Footer: row count again, then the CRC over everything before it.
    put_u64(&mut out, n as u64);
    let crc = crc32(&out);
    put_u32(&mut out, crc);
    out
}

fn decode_v1(bytes: &[u8]) -> Result<ColumnBatch> {
    // Verify the footer before trusting any block length.
    let crc_at = bytes.len() - 4;
    let mut pos = crc_at;
    let stored_crc = read_u32(bytes, &mut pos)?;
    if crc32(&bytes[..crc_at]) != stored_crc {
        return Err(Error::parse("ndtc checksum (corrupt container)", ""));
    }
    let mut pos = bytes.len() - FOOTER_LEN;
    let footer_rows = read_u64(bytes, &mut pos)?;

    let body = &bytes[..bytes.len() - FOOTER_LEN];
    let mut pos = HEADER_LEN;
    let n = read_uvarint(body, &mut pos)?;
    if n != footer_rows {
        return Err(Error::parse(
            "ndtc footer row count",
            &footer_rows.to_string(),
        ));
    }
    let n = usize::try_from(n).map_err(|_| Error::parse("ndtc row count", ""))?;
    // A row costs at least one byte in every varint column; anything
    // claiming more rows than bytes is corrupt, caught before allocating.
    if n > body.len() {
        return Err(Error::parse("ndtc row count (exceeds container size)", ""));
    }

    let sections = split_column_sections(body, &mut pos)?;
    if pos != body.len() {
        return Err(Error::parse("ndtc container (trailing bytes)", ""));
    }

    let batch = ColumnBatch {
        dates: decode_date_payload(sections[0], n)?,
        countries: decode_country_payload(sections[1], n)?.0,
        asns: decode_asn_payload(sections[2], n)?,
        download: decode_float_payload(sections[3], n)?,
        upload: decode_float_payload(sections[4], n)?,
        min_rtt: decode_float_payload(sections[5], n)?,
        loss: decode_float_payload(sections[6], n)?,
    };
    batch.validate()?;
    Ok(batch)
}

// ---------------------------------------------------------------------
// v2 writer
// ---------------------------------------------------------------------

/// Encode rows as one indexed (v2) `.ndtc` container with
/// [`DEFAULT_BLOCK_ROWS`] rows per block.
pub fn encode_rows_v2(rows: &[NdtTest]) -> Vec<u8> {
    encode_v2(&ColumnBatch::from_rows(rows))
}

/// Encode a column batch as one indexed (v2) `.ndtc` container.
pub fn encode_v2(batch: &ColumnBatch) -> Vec<u8> {
    encode_v2_with(batch, DEFAULT_BLOCK_ROWS)
}

/// Encode with an explicit block size (rows per row group). Tests use
/// tiny blocks to exercise pruning; `block_rows` is clamped to ≥ 1.
pub fn encode_v2_with(batch: &ColumnBatch, block_rows: usize) -> Vec<u8> {
    let block_rows = block_rows.max(1);
    let n = batch.len();
    let mut out = Vec::with_capacity(64 + n * 36);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION_V2);

    struct Pending {
        offset: usize,
        len: usize,
        rows: usize,
        min_days: i64,
        max_days: i64,
        crc: u32,
        countries: Vec<CountryCode>,
    }
    let mut entries: Vec<Pending> = Vec::new();
    let mut start = 0usize;
    while start < n {
        let end = (start + block_rows).min(n);
        let offset = out.len();
        put_uvarint(&mut out, (end - start) as u64);
        let dict = encode_column_sections(batch, start..end, &mut out);
        let days = batch.dates[start..end].iter().map(|d| d.days_since_epoch());
        let min_days = days.clone().min().expect("non-empty block");
        let max_days = days.max().expect("non-empty block");
        let crc = crc32(&out[offset..]);
        entries.push(Pending {
            offset,
            len: out.len() - offset,
            rows: end - start,
            min_days,
            max_days,
            crc,
            countries: dict,
        });
        start = end;
    }

    let index_start = out.len();
    put_uvarint(&mut out, entries.len() as u64);
    for e in &entries {
        put_uvarint(&mut out, e.offset as u64);
        put_uvarint(&mut out, e.len as u64);
        put_uvarint(&mut out, e.rows as u64);
        put_ivarint(&mut out, e.min_days);
        put_ivarint(&mut out, e.max_days);
        put_u32(&mut out, e.crc);
        put_uvarint(&mut out, e.countries.len() as u64);
        for cc in &e.countries {
            out.extend_from_slice(cc.as_str().as_bytes());
        }
    }
    let index_len = out.len() - index_start;
    put_u32(&mut out, index_len as u32);
    put_u64(&mut out, n as u64);
    // The tail CRC covers the index plus the two tail fields before it,
    // so open() validates everything it uses for seeking in one pass.
    let crc = crc32(&out[index_start..]);
    put_u32(&mut out, crc);
    out
}

// ---------------------------------------------------------------------
// Borrowed (zero-copy) read path
// ---------------------------------------------------------------------

/// A borrowed fixed-width `f64` column: a view straight over one
/// block's little-endian payload bytes, no copy into a `Vec`. Values
/// materialize per access; the payload length is checked against the
/// row count once at construction, so the accessors stay infallible.
///
/// (The container guarantees byte layout, not alignment, so this cannot
/// be a `&[f64]` — each access assembles the 8 little-endian bytes,
/// which the optimizer lowers to a plain unaligned load.)
#[derive(Debug, Clone, Copy, Default)]
pub struct ColumnSlice<'a> {
    bytes: &'a [u8],
}

impl<'a> ColumnSlice<'a> {
    /// Wrap a float-column payload carrying exactly `n` doubles.
    fn new(bytes: &'a [u8], n: usize) -> Result<ColumnSlice<'a>> {
        if bytes.len() != n * 8 {
            return Err(Error::parse("ndtc float column (wrong size)", ""));
        }
        Ok(ColumnSlice { bytes })
    }

    /// The empty column — what a skipped column presents as.
    pub const fn empty() -> ColumnSlice<'static> {
        ColumnSlice { bytes: &[] }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.bytes.len() / 8
    }

    /// Whether the column holds no values.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The `i`-th value. Panics if `i >= len()`, like slice indexing.
    pub fn get(&self, i: usize) -> f64 {
        f64_at(self.bytes, i)
    }

    /// Iterate the values in row order. The iterator borrows only the
    /// container bytes, so it outlives the `ColumnSlice` handle itself.
    /// Built on `chunks_exact` so the hot loop carries no per-element
    /// bounds checks — the borrowed scan must not pay per-value for
    /// skipping the owned path's `Vec` materialization.
    pub fn iter(&self) -> impl Iterator<Item = f64> + 'a {
        self.bytes.chunks_exact(8).map(|raw| {
            let mut le = [0u8; 8];
            le.copy_from_slice(raw);
            f64::from_bits(u64::from_le_bytes(le))
        })
    }
}

/// Caller-owned decode arena for the varint/dictionary columns of the
/// borrowed read path. [`ColumnReader::scan_counted`] clears these
/// vectors per block but never shrinks them, so after the first block
/// has sized them a scan over any number of further blocks performs
/// zero per-block heap allocations — the regression guard in
/// `tests/alloc_guard.rs` pins exactly that.
#[derive(Debug, Default)]
pub struct DecodeScratch {
    dates: Vec<Date>,
    countries: Vec<CountryCode>,
    asns: Vec<Asn>,
    country_dict: Vec<CountryCode>,
    asn_dict: Vec<Asn>,
}

impl DecodeScratch {
    /// A fresh (cold) arena. Reuse one across blocks, shards and whole
    /// range scans; ownership stays with the caller the entire time.
    pub fn new() -> DecodeScratch {
        DecodeScratch::default()
    }

    fn reset(&mut self) {
        self.dates.clear();
        self.countries.clear();
        self.asns.clear();
        self.country_dict.clear();
        self.asn_dict.clear();
    }
}

/// One decoded row-group block, borrowed: varint/dictionary columns
/// live in the caller's [`DecodeScratch`] (lifetime `'s`), fixed-width
/// float columns are [`ColumnSlice`] views straight over the container
/// bytes (lifetime `'a`). Columns the [`ColumnSelection`] skipped are
/// empty. The view is only valid inside the scan callback — the next
/// block reuses the scratch underneath it.
#[derive(Debug, Clone, Copy)]
pub struct BlockView<'a, 's> {
    rows: usize,
    dates: &'s [Date],
    countries: &'s [CountryCode],
    asns: &'s [Asn],
    download: ColumnSlice<'a>,
    upload: ColumnSlice<'a>,
    min_rtt: ColumnSlice<'a>,
    loss: ColumnSlice<'a>,
}

impl<'a, 's> BlockView<'a, 's> {
    /// Rows in this block (populated columns all have this length).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The test dates, row order (empty if not selected).
    pub fn dates(&self) -> &'s [Date] {
        self.dates
    }

    /// The client countries, row order (empty if not selected).
    pub fn countries(&self) -> &'s [CountryCode] {
        self.countries
    }

    /// The client ASNs, row order (empty if not selected).
    pub fn asns(&self) -> &'s [Asn] {
        self.asns
    }

    /// The downstream throughputs (Mbit/s), row order.
    pub fn download(&self) -> ColumnSlice<'a> {
        self.download
    }

    /// The upstream throughputs (Mbit/s), row order.
    pub fn upload(&self) -> ColumnSlice<'a> {
        self.upload
    }

    /// The minimum RTTs (ms), row order.
    pub fn min_rtt(&self) -> ColumnSlice<'a> {
        self.min_rtt
    }

    /// The loss rates, row order.
    pub fn loss(&self) -> ColumnSlice<'a> {
        self.loss
    }

    /// Block-wise mirror of `ColumnBatch::validate`: the same range
    /// checks the owned path applies, evaluated over the borrowed
    /// views, so a corrupt container cannot smuggle out-of-range values
    /// past a zero-copy consumer either.
    fn validate(&self) -> Result<()> {
        if self
            .download
            .iter()
            .chain(self.upload.iter())
            .any(|v| v < 0.0)
        {
            return Err(Error::invalid("negative throughput"));
        }
        if self.min_rtt.iter().any(|v| v < 0.0) {
            return Err(Error::invalid("negative RTT"));
        }
        if self.loss.iter().any(|v| !(0.0..=1.0).contains(&v)) {
            return Err(Error::invalid("loss rate outside [0,1]"));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// v2 reader
// ---------------------------------------------------------------------

/// One footer-index entry: where a row-group block lives and what it
/// can contain.
#[derive(Debug, Clone)]
struct BlockEntry {
    offset: usize,
    len: usize,
    rows: usize,
    min_days: i64,
    max_days: i64,
    crc: u32,
    countries: Vec<CountryCode>,
}

/// A validated view over a v2 container held in a caller-owned buffer.
///
/// [`ColumnReader::open`] parses the header and the CRC-protected footer
/// index only — no block bytes are touched. [`ColumnReader::read`] then
/// decodes exactly the blocks and columns a [`ColumnSelection`] asks
/// for, verifying each decoded block's own CRC on the way.
pub struct ColumnReader<'a> {
    bytes: &'a [u8],
    rows: usize,
    blocks: Vec<BlockEntry>,
}

impl<'a> ColumnReader<'a> {
    /// Validate the header and footer index of a v2 container. Typed
    /// errors for wrong magic, non-v2 versions (v1 containers go through
    /// [`decode`]), truncation, index corruption, and any index entry
    /// whose geometry doesn't tile the block region exactly.
    pub fn open(bytes: &'a [u8]) -> Result<ColumnReader<'a>> {
        if bytes.len() < HEADER_LEN + V2_TAIL_LEN {
            return Err(Error::parse("ndtc container (truncated)", ""));
        }
        if bytes[..4] != MAGIC {
            return Err(Error::parse("ndtc magic", &format!("{:02x?}", &bytes[..4])));
        }
        if bytes[4] != VERSION_V2 {
            return Err(Error::parse(
                "ndtc version 2 (ColumnReader reads only indexed containers)",
                &bytes[4].to_string(),
            ));
        }
        let tail_at = bytes.len() - V2_TAIL_LEN;
        let mut pos = tail_at;
        let index_len = read_u32(bytes, &mut pos)? as usize;
        let total_rows = read_u64(bytes, &mut pos)?;
        let stored_crc = read_u32(bytes, &mut pos)?;
        let index_start = tail_at
            .checked_sub(index_len)
            .filter(|&s| s >= HEADER_LEN)
            .ok_or_else(|| Error::parse("ndtc v2 index length", &index_len.to_string()))?;
        if crc32(&bytes[index_start..bytes.len() - 4]) != stored_crc {
            return Err(Error::parse("ndtc v2 index checksum (corrupt index)", ""));
        }

        let index = &bytes[index_start..tail_at];
        let mut pos = 0;
        let count = read_uvarint(index, &mut pos)?;
        // Every entry costs at least one byte in the index.
        let count = usize::try_from(count)
            .ok()
            .filter(|&c| c <= index.len())
            .ok_or_else(|| Error::parse("ndtc v2 block count", ""))?;
        let mut blocks = Vec::with_capacity(count);
        let mut expected_offset = HEADER_LEN;
        let mut rows_sum = 0u64;
        for _ in 0..count {
            let offset = read_uvarint(index, &mut pos)?;
            let len = read_uvarint(index, &mut pos)?;
            let rows = read_uvarint(index, &mut pos)?;
            let min_days = read_ivarint(index, &mut pos)?;
            let max_days = read_ivarint(index, &mut pos)?;
            let crc = read_u32(index, &mut pos)?;
            let cc_count = read_uvarint(index, &mut pos)?;
            let (offset, len, rows) = (|| {
                Some((
                    usize::try_from(offset).ok()?,
                    usize::try_from(len).ok()?,
                    usize::try_from(rows).ok()?,
                ))
            })()
            .ok_or_else(|| Error::parse("ndtc v2 index entry", ""))?;
            if rows == 0 || min_days > max_days {
                return Err(Error::parse("ndtc v2 index entry", ""));
            }
            let cc_count = usize::try_from(cc_count)
                .ok()
                .filter(|&c| c >= 1 && c <= rows)
                .ok_or_else(|| Error::parse("ndtc v2 country summary", ""))?;
            let mut countries = Vec::with_capacity(cc_count.min(256));
            for _ in 0..cc_count {
                let end = pos
                    .checked_add(2)
                    .filter(|&e| e <= index.len())
                    .ok_or_else(|| Error::parse("ndtc v2 country summary (truncated)", ""))?;
                let s = std::str::from_utf8(&index[pos..end])
                    .map_err(|_| Error::parse("ndtc v2 country summary entry", ""))?;
                countries.push(CountryCode::new(s)?);
                pos = end;
            }
            // Blocks must tile [header, index) exactly, in order — the
            // index cannot point a reader at overlapping or stray bytes.
            if offset != expected_offset {
                return Err(Error::parse("ndtc v2 block offset (not contiguous)", ""));
            }
            expected_offset = offset
                .checked_add(len)
                .filter(|&e| e <= index_start)
                .ok_or_else(|| Error::parse("ndtc v2 block length (out of bounds)", ""))?;
            rows_sum += rows as u64;
            blocks.push(BlockEntry {
                offset,
                len,
                rows,
                min_days,
                max_days,
                crc,
                countries,
            });
        }
        if pos != index.len() {
            return Err(Error::parse("ndtc v2 index (trailing bytes)", ""));
        }
        if expected_offset != index_start {
            return Err(Error::parse("ndtc v2 index (blocks do not cover body)", ""));
        }
        if rows_sum != total_rows {
            return Err(Error::parse(
                "ndtc footer row count",
                &total_rows.to_string(),
            ));
        }
        let rows = usize::try_from(total_rows).map_err(|_| Error::parse("ndtc row count", ""))?;
        Ok(ColumnReader {
            bytes,
            rows,
            blocks,
        })
    }

    /// Total rows in the container (from the validated footer).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Row-group blocks listed in the footer index.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Decode the blocks and columns `selection` asks for.
    pub fn read(&self, selection: &ColumnSelection) -> Result<ColumnBatch> {
        self.read_counted(selection).map(|(batch, _)| batch)
    }

    /// [`ColumnReader::read`], returning decode accounting alongside.
    ///
    /// The owned path is a thin wrapper over the borrowed
    /// [`ColumnReader::scan_counted`]: each block view is appended onto
    /// a fresh [`ColumnBatch`], so the two paths cannot drift — the
    /// copies here are the *only* difference.
    pub fn read_counted(&self, selection: &ColumnSelection) -> Result<(ColumnBatch, ReadStats)> {
        let mut batch = ColumnBatch::default();
        let mut scratch = DecodeScratch::new();
        let stats = self.scan_counted(selection, &mut scratch, |view| {
            batch.dates.extend_from_slice(view.dates);
            batch.countries.extend_from_slice(view.countries);
            batch.asns.extend_from_slice(view.asns);
            batch.download.extend(view.download.iter());
            batch.upload.extend(view.upload.iter());
            batch.min_rtt.extend(view.min_rtt.iter());
            batch.loss.extend(view.loss.iter());
            Ok(())
        })?;
        Ok((batch, stats))
    }

    /// The zero-copy read path: walk the blocks `selection` matches and
    /// hand each to `visit` as a borrowed [`BlockView`] — fixed-width
    /// float columns viewed in place over the container bytes,
    /// varint/dictionary columns decoded into the caller's reusable
    /// [`DecodeScratch`]. All the owned path's integrity checks run
    /// here: per-block CRC, block row count, the index date-span and
    /// country-summary cross-checks, and the value-range validation.
    ///
    /// Blocks arrive in container order; an `Err` from `visit` aborts
    /// the scan. After the first block has warmed the scratch capacity,
    /// the scan performs no per-block heap allocations.
    pub fn scan_counted<F>(
        &self,
        selection: &ColumnSelection,
        scratch: &mut DecodeScratch,
        mut visit: F,
    ) -> Result<ReadStats>
    where
        F: FnMut(&BlockView<'a, '_>) -> Result<()>,
    {
        let mut stats = ReadStats {
            blocks_total: self.blocks.len(),
            ..ReadStats::default()
        };
        let want = selection.columns;
        for entry in &self.blocks {
            if !selection.matches(entry) {
                continue;
            }
            stats.blocks_decoded += 1;
            let block = &self.bytes[entry.offset..entry.offset + entry.len];
            if crc32(block) != entry.crc {
                return Err(Error::parse("ndtc checksum (corrupt block)", ""));
            }
            let mut pos = 0;
            let n = read_uvarint(block, &mut pos)?;
            if n != entry.rows as u64 {
                return Err(Error::parse("ndtc v2 block row count", &n.to_string()));
            }
            let n = entry.rows;
            let sections = split_column_sections(block, &mut pos)?;
            if pos != block.len() {
                return Err(Error::parse("ndtc container (trailing bytes)", ""));
            }
            scratch.reset();
            let mut touched = |payload: &[u8]| {
                stats.columns_decoded += 1;
                stats.bytes_decoded += payload.len();
            };
            if want.contains(ColumnSet::DATES) {
                touched(sections[0]);
                decode_date_payload_into(sections[0], n, &mut scratch.dates)?;
                // Cross-check the index span against the decoded column:
                // a lying index must not silently mis-prune future reads.
                let days = scratch.dates.iter().map(|d| d.days_since_epoch());
                if days.clone().min() != Some(entry.min_days) || days.max() != Some(entry.max_days)
                {
                    return Err(Error::parse("ndtc v2 index date span (mismatch)", ""));
                }
            }
            if want.contains(ColumnSet::COUNTRIES) {
                touched(sections[1]);
                decode_country_payload_into(
                    sections[1],
                    n,
                    &mut scratch.countries,
                    &mut scratch.country_dict,
                )?;
                if scratch.country_dict != entry.countries {
                    return Err(Error::parse("ndtc v2 index country summary (mismatch)", ""));
                }
            }
            if want.contains(ColumnSet::ASNS) {
                touched(sections[2]);
                decode_asn_payload_into(sections[2], n, &mut scratch.asns, &mut scratch.asn_dict)?;
            }
            let mut floats = [ColumnSlice::empty(); 4];
            for (slot, (set, section)) in floats.iter_mut().zip([
                (ColumnSet::DOWNLOAD, sections[3]),
                (ColumnSet::UPLOAD, sections[4]),
                (ColumnSet::MIN_RTT, sections[5]),
                (ColumnSet::LOSS, sections[6]),
            ]) {
                if want.contains(set) {
                    touched(section);
                    *slot = ColumnSlice::new(section, n)?;
                }
            }
            let [download, upload, min_rtt, loss] = floats;
            let view = BlockView {
                rows: n,
                dates: &scratch.dates,
                countries: &scratch.countries,
                asns: &scratch.asns,
                download,
                upload,
                min_rtt,
                loss,
            };
            view.validate()?;
            visit(&view)?;
        }
        Ok(stats)
    }

    /// The min/max days-since-epoch across every block, straight from
    /// the validated footer index — `None` for an empty container. What
    /// the archive-level shard index records for range pruning.
    pub fn day_span(&self) -> Option<(i64, i64)> {
        let min = self.blocks.iter().map(|b| b.min_days).min()?;
        let max = self.blocks.iter().map(|b| b.max_days).max()?;
        Some((min, max))
    }
}

/// The borrowed-read spelling of [`ColumnReader`]. The reader has
/// always been a reference type over a caller-owned (or pre-resident)
/// byte buffer; this alias names the zero-copy role explicitly at call
/// sites that drive [`ColumnReader::scan_counted`] with a
/// [`DecodeScratch`] and consume [`BlockView`]s.
pub type ColumnReaderRef<'a> = ColumnReader<'a>;

// ---------------------------------------------------------------------
// Version-dispatching entry points
// ---------------------------------------------------------------------

/// Decode one `.ndtc` container fully, either version. Rejects wrong
/// magic, unknown versions, truncated or oversized blocks,
/// footer/checksum mismatches and out-of-range row values — all as
/// typed errors.
pub fn decode(bytes: &[u8]) -> Result<ColumnBatch> {
    read_batch(bytes, &ColumnSelection::all())
}

/// Decode one `.ndtc` container through a [`ColumnSelection`]. Version 2
/// containers decode selectively; version 1 containers have no index, so
/// the selection falls back to a full decode (correct, just not lazy).
pub fn read_batch(bytes: &[u8], selection: &ColumnSelection) -> Result<ColumnBatch> {
    if bytes.len() < HEADER_LEN {
        return Err(Error::parse("ndtc container (truncated)", ""));
    }
    if bytes[..4] != MAGIC {
        return Err(Error::parse("ndtc magic", &format!("{:02x?}", &bytes[..4])));
    }
    match bytes[4] {
        VERSION_V1 => {
            if bytes.len() < HEADER_LEN + FOOTER_LEN {
                return Err(Error::parse("ndtc container (truncated)", ""));
            }
            decode_v1(bytes)
        }
        VERSION_V2 => ColumnReader::open(bytes)?.read(selection),
        v => Err(Error::parse(
            "ndtc version 1 or 2 (readers reject unknown versions)",
            &v.to_string(),
        )),
    }
}

/// Cheap container census without decoding row data: `(rows, blocks)`.
/// A v1 container reports one block; a v2 container reports its indexed
/// block count. Used to build the archive-level shard index.
pub fn container_stats(bytes: &[u8]) -> Result<(u64, u64)> {
    if bytes.len() < HEADER_LEN {
        return Err(Error::parse("ndtc container (truncated)", ""));
    }
    if bytes[..4] != MAGIC {
        return Err(Error::parse("ndtc magic", &format!("{:02x?}", &bytes[..4])));
    }
    match bytes[4] {
        VERSION_V1 => {
            if bytes.len() < HEADER_LEN + FOOTER_LEN {
                return Err(Error::parse("ndtc container (truncated)", ""));
            }
            let mut pos = bytes.len() - FOOTER_LEN;
            let rows = read_u64(bytes, &mut pos)?;
            Ok((rows, 1))
        }
        VERSION_V2 => {
            let reader = ColumnReader::open(bytes)?;
            Ok((reader.rows() as u64, reader.block_count() as u64))
        }
        v => Err(Error::parse(
            "ndtc version 1 or 2 (readers reject unknown versions)",
            &v.to_string(),
        )),
    }
}

/// Cheap day-span census without decoding row data: `Some((min, max))`
/// days-since-epoch over all rows, from the v2 footer index alone.
/// `None` for an empty container and for v1 containers (which have no
/// index to consult without a full decode). Feeds the archive-level
/// shard index's range-pruning summaries.
pub fn container_day_span(bytes: &[u8]) -> Result<Option<(i64, i64)>> {
    if bytes.len() < HEADER_LEN {
        return Err(Error::parse("ndtc container (truncated)", ""));
    }
    if bytes[..4] != MAGIC {
        return Err(Error::parse("ndtc magic", &format!("{:02x?}", &bytes[..4])));
    }
    match bytes[4] {
        VERSION_V1 => {
            if bytes.len() < HEADER_LEN + FOOTER_LEN {
                return Err(Error::parse("ndtc container (truncated)", ""));
            }
            Ok(None)
        }
        VERSION_V2 => Ok(ColumnReader::open(bytes)?.day_span()),
        v => Err(Error::parse(
            "ndtc version 1 or 2 (readers reject unknown versions)",
            &v.to_string(),
        )),
    }
}

/// Read one `.ndtc` shard from a reader. The container is checksummed,
/// so the reader slurps the (bounded, per-country-month) file and
/// verifies it before any value is surfaced; rows then stream lazily
/// off the decoded columns via [`ColumnBatch::iter`].
pub fn read_shard<R: Read>(mut reader: R) -> Result<ColumnBatch> {
    let mut bytes = Vec::new();
    reader
        .read_to_end(&mut bytes)
        .map_err(|e| Error::parse("ndtc shard read", &e.to_string()))?;
    decode(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lacnet_types::country;

    fn rows() -> Vec<NdtTest> {
        vec![
            NdtTest {
                date: Date::ymd(2019, 7, 14),
                country: country::VE,
                asn: Asn(8048),
                download_mbps: 0.87,
                upload_mbps: 0.31,
                min_rtt_ms: 58.2,
                loss_rate: 0.012,
            },
            NdtTest {
                date: Date::ymd(2019, 7, 2),
                country: country::VE,
                asn: Asn(8048),
                download_mbps: 1.25,
                upload_mbps: 0.5,
                min_rtt_ms: 44.0,
                loss_rate: 0.0,
            },
            NdtTest {
                date: Date::ymd(2019, 7, 30),
                country: country::BR,
                asn: Asn(28573),
                download_mbps: 22.5,
                upload_mbps: 11.0,
                min_rtt_ms: 12.0,
                loss_rate: 1.0,
            },
        ]
    }

    #[test]
    fn roundtrip_preserves_rows_exactly() {
        let rows = rows();
        let decoded = decode(&encode_rows(&rows)).unwrap();
        assert_eq!(decoded.len(), rows.len());
        let back: Vec<NdtTest> = decoded.iter().collect();
        assert_eq!(back, rows);
    }

    #[test]
    fn v2_roundtrip_preserves_rows_exactly() {
        let rows = rows();
        for block_rows in [1, 2, 3, 4096] {
            let bytes = encode_v2_with(&ColumnBatch::from_rows(&rows), block_rows);
            let decoded = decode(&bytes).unwrap();
            assert_eq!(
                decoded.iter().collect::<Vec<_>>(),
                rows,
                "block_rows {block_rows}"
            );
        }
    }

    #[test]
    fn v1_and_v2_decode_to_the_same_batch() {
        let rows = rows();
        let v1 = decode(&encode_rows(&rows)).unwrap();
        let v2 = decode(&encode_rows_v2(&rows)).unwrap();
        assert_eq!(v1, v2);
    }

    #[test]
    fn empty_and_single_row_shards_roundtrip() {
        let empty = decode(&encode_rows(&[])).unwrap();
        assert!(empty.is_empty());
        let empty = decode(&encode_rows_v2(&[])).unwrap();
        assert!(empty.is_empty());
        let one = &rows()[..1];
        let decoded = decode(&encode_rows(one)).unwrap();
        assert_eq!(decoded.iter().collect::<Vec<_>>(), one);
        let decoded = decode(&encode_rows_v2(one)).unwrap();
        assert_eq!(decoded.iter().collect::<Vec<_>>(), one);
    }

    #[test]
    fn container_header_is_frozen() {
        // Format-version guard: the first five bytes of every container
        // are the magic followed by the version constant. Changing a
        // magic or version byte without a deliberate fixture update here
        // fails CI.
        let v1 = encode_rows(&[]);
        assert_eq!(&v1[..4], b"NDTC");
        assert_eq!(v1[4], 1);
        let v2 = encode_rows_v2(&[]);
        assert_eq!(&v2[..4], b"NDTC");
        assert_eq!(v2[4], 2);
        assert_eq!(VERSION_V1, 1, "bump this pin together with the constant");
        assert_eq!(VERSION_V2, 2, "bump this pin together with the constant");
    }

    #[test]
    fn wrong_magic_is_a_typed_error() {
        for bytes in [encode_rows(&rows()), encode_rows_v2(&rows())] {
            let mut bytes = bytes;
            bytes[0] = b'X';
            match decode(&bytes) {
                Err(Error::Parse { expected, .. }) => assert!(expected.contains("magic")),
                other => panic!("expected a magic error, got {other:?}"),
            }
        }
    }

    #[test]
    fn unknown_version_is_rejected() {
        let mut bytes = encode_rows(&rows());
        bytes[4] = VERSION_V2 + 1;
        match decode(&bytes) {
            Err(Error::Parse { expected, .. }) => assert!(expected.contains("version")),
            other => panic!("expected a version error, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_footer_is_a_typed_error() {
        let mut bytes = encode_rows(&rows());
        let len = bytes.len();
        bytes[len - 1] ^= 0xFF; // flip CRC bits
        assert!(matches!(decode(&bytes), Err(Error::Parse { .. })));
        let mut bytes = encode_rows(&rows());
        let len = bytes.len();
        bytes[len - 8] ^= 0x01; // corrupt the footer row count (CRC catches it)
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn v2_corrupted_index_fails_open() {
        let mut bytes = encode_rows_v2(&rows());
        let len = bytes.len();
        bytes[len - 1] ^= 0xFF; // flip tail CRC bits
        assert!(matches!(
            ColumnReader::open(&bytes),
            Err(Error::Parse { .. })
        ));
        let mut bytes = encode_rows_v2(&rows());
        let len = bytes.len();
        bytes[len - 6] ^= 0x01; // corrupt the tail row count (CRC catches it)
        assert!(ColumnReader::open(&bytes).is_err());
    }

    #[test]
    fn v2_corrupted_block_passes_open_but_fails_decode() {
        // Block corruption is invisible to open() by design — only the
        // index is validated up front — and caught by the per-block CRC
        // the moment the block is decoded.
        let mut bytes = encode_rows_v2(&rows());
        bytes[8] ^= 0x40; // inside the first (only) block's payload
        let reader = ColumnReader::open(&bytes).expect("index is intact");
        match reader.read(&ColumnSelection::all()) {
            Err(Error::Parse { expected, .. }) => assert!(expected.contains("checksum")),
            other => panic!("expected a block checksum error, got {other:?}"),
        }
    }

    #[test]
    fn truncated_container_is_a_typed_error() {
        for bytes in [encode_rows(&rows()), encode_rows_v2(&rows())] {
            for cut in [0, 3, 5, 8, bytes.len() / 2, bytes.len() - 1] {
                assert!(
                    matches!(decode(&bytes[..cut]), Err(Error::Parse { .. })),
                    "truncation at {cut} must fail typed"
                );
            }
        }
    }

    #[test]
    fn corrupted_body_is_caught_by_the_checksum() {
        let mut bytes = encode_rows(&rows());
        bytes[10] ^= 0x40;
        match decode(&bytes) {
            Err(Error::Parse { expected, .. }) => assert!(expected.contains("checksum")),
            other => panic!("expected a checksum error, got {other:?}"),
        }
    }

    #[test]
    fn out_of_range_values_are_rejected_like_the_text_path() {
        let mut bad = rows();
        bad[0].loss_rate = 1.5;
        let mut bytes = encode_rows(&bad);
        // Re-seal the container so only the range check can object.
        let len = bytes.len();
        bytes.truncate(len - 4);
        let crc = crc32(&bytes);
        put_u32(&mut bytes, crc);
        assert!(matches!(decode(&bytes), Err(Error::Invalid { .. })));
    }

    #[test]
    fn selective_decode_reads_only_requested_columns() {
        let rows = rows();
        let bytes = encode_rows_v2(&rows);
        let reader = ColumnReader::open(&bytes).unwrap();
        let (batch, stats) = reader
            .read_counted(&ColumnSelection::columns(ColumnSet::AGGREGATE))
            .unwrap();
        assert_eq!(batch.len(), rows.len());
        assert_eq!(batch.dates().len(), rows.len());
        assert_eq!(batch.countries().len(), rows.len());
        assert_eq!(batch.download().len(), rows.len());
        assert!(batch.asns().is_empty());
        assert!(batch.upload().is_empty());
        assert!(batch.min_rtt().is_empty());
        assert!(batch.loss().is_empty());
        assert_eq!(stats.blocks_total, 1);
        assert_eq!(stats.blocks_decoded, 1);
        assert_eq!(stats.columns_decoded, 3);
        assert!(stats.bytes_decoded < bytes.len());
    }

    #[test]
    fn block_pruning_by_date_and_country() {
        // One row per block (block_rows = 1): dates Jul 14 / Jul 2 /
        // Jul 30, countries VE / VE / BR.
        let rows = rows();
        let bytes = encode_v2_with(&ColumnBatch::from_rows(&rows), 1);
        let reader = ColumnReader::open(&bytes).unwrap();
        assert_eq!(reader.block_count(), 3);

        let sel = ColumnSelection::columns(ColumnSet::ALL)
            .with_dates(Date::ymd(2019, 7, 1), Date::ymd(2019, 7, 10));
        let (batch, stats) = reader.read_counted(&sel).unwrap();
        assert_eq!(stats.blocks_decoded, 1);
        assert_eq!(batch.iter().collect::<Vec<_>>(), vec![rows[1]]);

        let sel = ColumnSelection::columns(ColumnSet::ALL).with_country(country::BR);
        let (batch, stats) = reader.read_counted(&sel).unwrap();
        assert_eq!(stats.blocks_decoded, 1);
        assert_eq!(batch.iter().collect::<Vec<_>>(), vec![rows[2]]);

        let sel = ColumnSelection::columns(ColumnSet::ALL)
            .with_country(country::VE)
            .with_dates(Date::ymd(2019, 7, 20), Date::ymd(2019, 7, 31));
        let (batch, stats) = reader.read_counted(&sel).unwrap();
        assert_eq!(stats.blocks_decoded, 0);
        assert!(batch.is_empty());
        assert_eq!(stats.bytes_decoded, 0);

        let sel = ColumnSelection::columns(ColumnSet::NONE).with_country(country::VE);
        let (batch, stats) = reader.read_counted(&sel).unwrap();
        assert_eq!(stats.blocks_decoded, 2);
        assert_eq!(stats.columns_decoded, 0);
        assert!(batch.is_empty());
    }

    #[test]
    fn container_stats_census() {
        let rows = rows();
        assert_eq!(container_stats(&encode_rows(&rows)).unwrap(), (3, 1));
        let bytes = encode_v2_with(&ColumnBatch::from_rows(&rows), 2);
        assert_eq!(container_stats(&bytes).unwrap(), (3, 2));
        assert!(container_stats(b"NDTX").is_err());
    }

    #[test]
    fn container_day_span_census() {
        // rows() spans Jul 2 .. Jul 30 2019 regardless of block split.
        let rows = rows();
        let lo = Date::ymd(2019, 7, 2).days_since_epoch();
        let hi = Date::ymd(2019, 7, 30).days_since_epoch();
        for block_rows in [1, 2, 4096] {
            let bytes = encode_v2_with(&ColumnBatch::from_rows(&rows), block_rows);
            assert_eq!(container_day_span(&bytes).unwrap(), Some((lo, hi)));
        }
        assert_eq!(container_day_span(&encode_rows_v2(&[])).unwrap(), None);
        // v1 has no footer index — the census answers "unknown".
        assert_eq!(container_day_span(&encode_rows(&rows)).unwrap(), None);
        assert!(container_day_span(b"NDTX").is_err());
    }

    #[test]
    fn column_slice_views_values_in_place() {
        let vals = [0.25f64, 7.5, 0.0, 1000.125];
        let mut payload = Vec::new();
        for v in vals {
            put_f64(&mut payload, v);
        }
        let slice = ColumnSlice::new(&payload, vals.len()).unwrap();
        assert_eq!(slice.len(), vals.len());
        assert!(!slice.is_empty());
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(slice.get(i).to_bits(), v.to_bits());
        }
        assert_eq!(slice.iter().collect::<Vec<_>>(), vals);
        assert!(ColumnSlice::empty().is_empty());
        assert_eq!(ColumnSlice::empty().len(), 0);
        // A payload whose length disagrees with the row count is the
        // same typed error the owned float decoder raises.
        assert!(ColumnSlice::new(&payload, vals.len() + 1).is_err());
        assert!(ColumnSlice::new(&payload[..payload.len() - 1], vals.len()).is_err());
    }

    /// The pre-zero-copy owned decode, kept verbatim as a reference
    /// implementation: fresh `Vec`s per block via the allocating payload
    /// decoders. The proptest below pins the borrowed scan (and the
    /// thin owned wrapper over it) bit-identical to this.
    fn reference_read_counted(
        reader: &ColumnReader<'_>,
        selection: &ColumnSelection,
    ) -> Result<(ColumnBatch, ReadStats)> {
        let mut stats = ReadStats {
            blocks_total: reader.blocks.len(),
            ..ReadStats::default()
        };
        let mut batch = ColumnBatch::default();
        let want = selection.columns;
        for entry in &reader.blocks {
            if !selection.matches(entry) {
                continue;
            }
            stats.blocks_decoded += 1;
            let block = &reader.bytes[entry.offset..entry.offset + entry.len];
            if crc32(block) != entry.crc {
                return Err(Error::parse("ndtc checksum (corrupt block)", ""));
            }
            let mut pos = 0;
            let n = read_uvarint(block, &mut pos)?;
            if n != entry.rows as u64 {
                return Err(Error::parse("ndtc v2 block row count", &n.to_string()));
            }
            let n = entry.rows;
            let sections = split_column_sections(block, &mut pos)?;
            let mut touched = |payload: &[u8]| {
                stats.columns_decoded += 1;
                stats.bytes_decoded += payload.len();
            };
            if want.contains(ColumnSet::DATES) {
                touched(sections[0]);
                batch.dates.extend(decode_date_payload(sections[0], n)?);
            }
            if want.contains(ColumnSet::COUNTRIES) {
                touched(sections[1]);
                batch
                    .countries
                    .extend(decode_country_payload(sections[1], n)?.0);
            }
            if want.contains(ColumnSet::ASNS) {
                touched(sections[2]);
                batch.asns.extend(decode_asn_payload(sections[2], n)?);
            }
            for (set, section, col) in [
                (ColumnSet::DOWNLOAD, sections[3], &mut batch.download),
                (ColumnSet::UPLOAD, sections[4], &mut batch.upload),
                (ColumnSet::MIN_RTT, sections[5], &mut batch.min_rtt),
                (ColumnSet::LOSS, sections[6], &mut batch.loss),
            ] {
                if want.contains(set) {
                    touched(section);
                    col.extend(decode_float_payload(section, n)?);
                }
            }
        }
        batch.validate()?;
        Ok((batch, stats))
    }

    #[test]
    fn scratch_capacity_survives_blocks_and_scans() {
        let rows = rows();
        let bytes = encode_v2_with(&ColumnBatch::from_rows(&rows), 1);
        let reader = ColumnReader::open(&bytes).unwrap();
        let mut scratch = DecodeScratch::new();
        let sel = ColumnSelection::all();
        let mut seen = 0usize;
        let stats = reader
            .scan_counted(&sel, &mut scratch, |view| {
                seen += view.rows();
                assert_eq!(view.dates().len(), view.rows());
                assert_eq!(view.download().len(), view.rows());
                Ok(())
            })
            .unwrap();
        assert_eq!(seen, rows.len());
        assert_eq!(stats.blocks_decoded, 3);
        let warm = scratch.dates.capacity();
        assert!(warm >= 1);
        // A second scan with the same arena must not grow it — every
        // block fits in the capacity the first scan established.
        let stats2 = reader.scan_counted(&sel, &mut scratch, |_| Ok(())).unwrap();
        assert_eq!(stats2, stats);
        assert_eq!(scratch.dates.capacity(), warm);
    }

    #[test]
    fn column_set_algebra() {
        assert!(ColumnSet::ALL.contains(ColumnSet::AGGREGATE));
        assert!(ColumnSet::AGGREGATE.contains(ColumnSet::DATES));
        assert!(ColumnSet::AGGREGATE.contains(ColumnSet::COUNTRIES));
        assert!(ColumnSet::AGGREGATE.contains(ColumnSet::DOWNLOAD));
        assert!(!ColumnSet::AGGREGATE.contains(ColumnSet::LOSS));
        assert!(ColumnSet::NONE.is_empty());
        assert_eq!(ColumnSet::AGGREGATE.count(), 3);
        assert_eq!(ColumnSet::ALL.count(), 7);
        assert_eq!(ColumnSet::DATES.union(ColumnSet::LOSS).count(), 2);
    }

    #[test]
    fn shard_format_flags() {
        assert_eq!(ShardFormat::parse_flag("text"), Some(ShardFormat::Text));
        assert_eq!(
            ShardFormat::parse_flag("columnar"),
            Some(ShardFormat::Columnar)
        );
        assert_eq!(ShardFormat::parse_flag("parquet"), None);
        assert_eq!(ShardFormat::Text.extension(), "tsv");
        assert_eq!(ShardFormat::Columnar.extension(), "ndtc");
        assert_eq!(ShardFormat::Columnar.to_string(), "columnar");
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        fn arb_row(day: u8, cc: usize, asn: u32, f: (f64, f64, f64, f64)) -> NdtTest {
            let codes = [country::VE, country::BR, country::AR, country::UY];
            NdtTest {
                date: Date::ymd(2007 + (asn % 17) as i32, 1 + (asn % 12) as u8, day),
                country: codes[cc % codes.len()],
                asn: Asn(asn),
                download_mbps: f.0,
                upload_mbps: f.1,
                min_rtt_ms: f.2,
                loss_rate: f.3,
            }
        }

        proptest! {
            /// text shard → columnar encode → decode → text is
            /// byte-identical for arbitrary generated shards, including
            /// empty and single-row ones (`size 0..` covers both) —
            /// through both container versions, and v2 at a block size
            /// small enough to split every multi-row shard.
            #[test]
            fn text_columnar_text_is_byte_identical(
                specs in proptest::collection::vec(
                    (1u8..=28, 0usize..4, 1u32..400_000,
                     (0.0f64..500.0, 0.0f64..200.0, 0.0f64..900.0, 0.0f64..1.0)),
                    0..40,
                )
            ) {
                let rows: Vec<NdtTest> = specs
                    .into_iter()
                    .map(|(day, cc, asn, f)| arb_row(day, cc, asn, f))
                    .collect();
                let text: String = rows.iter().map(|r| r.to_row() + "\n").collect();
                let decoded = decode(&encode_rows(&rows)).unwrap();
                let back: String = decoded.iter().map(|r| r.to_row() + "\n").collect();
                prop_assert_eq!(&back, &text);
                let batch = ColumnBatch::from_rows(&rows);
                for block_rows in [3usize, 4096] {
                    let decoded = decode(&encode_v2_with(&batch, block_rows)).unwrap();
                    let back: String = decoded.iter().map(|r| r.to_row() + "\n").collect();
                    prop_assert_eq!(&back, &text);
                }
            }

            /// The borrowed scan is bit-identical to the owned decode
            /// for *every* `ColumnSelection` — all 128 column subsets,
            /// optional date-range and country pruning, shards split at
            /// arbitrary block sizes. `read_counted` (the thin wrapper
            /// over the scan) and a scan-collected batch must both match
            /// the reference owned implementation, `ReadStats` included.
            #[test]
            fn borrowed_scan_matches_owned_decode_for_every_selection(
                specs in proptest::collection::vec(
                    (1u8..=28, 0usize..4, 1u32..400_000,
                     (0.0f64..500.0, 0.0f64..200.0, 0.0f64..900.0, 0.0f64..1.0)),
                    0..48,
                ),
                col_mask in 0u8..=0x7f,
                block_rows in 1usize..9,
                date_window in proptest::option::of((0i64..400, 0i64..400)),
                country_pick in proptest::option::of(0usize..4),
            ) {
                let rows: Vec<NdtTest> = specs
                    .into_iter()
                    .map(|(day, cc, asn, f)| arb_row(day, cc, asn, f))
                    .collect();
                let bytes = encode_v2_with(&ColumnBatch::from_rows(&rows), block_rows);
                let reader = ColumnReader::open(&bytes).unwrap();

                let mut columns = ColumnSet::NONE;
                for (bit, set) in [
                    ColumnSet::DATES, ColumnSet::COUNTRIES, ColumnSet::ASNS,
                    ColumnSet::DOWNLOAD, ColumnSet::UPLOAD, ColumnSet::MIN_RTT,
                    ColumnSet::LOSS,
                ].into_iter().enumerate() {
                    if col_mask & (1 << bit) != 0 {
                        columns = columns.union(set);
                    }
                }
                let mut sel = ColumnSelection::columns(columns);
                if let Some((a, b)) = date_window {
                    let (lo, hi) = (a.min(b), a.max(b));
                    sel = sel.with_dates(
                        Date::from_days_since_epoch(13_500 + lo * 12),
                        Date::from_days_since_epoch(13_500 + hi * 12),
                    );
                }
                if let Some(i) = country_pick {
                    let codes = [country::VE, country::BR, country::AR, country::UY];
                    sel = sel.with_country(codes[i]);
                }

                let (want_batch, want_stats) =
                    reference_read_counted(&reader, &sel).unwrap();
                let (owned_batch, owned_stats) = reader.read_counted(&sel).unwrap();
                prop_assert_eq!(&owned_batch, &want_batch);
                prop_assert_eq!(owned_stats, want_stats);

                let mut scratch = DecodeScratch::new();
                let mut scanned = ColumnBatch::default();
                let scan_stats = reader
                    .scan_counted(&sel, &mut scratch, |view| {
                        scanned.dates.extend_from_slice(view.dates());
                        scanned.countries.extend_from_slice(view.countries());
                        scanned.asns.extend_from_slice(view.asns());
                        scanned.download.extend(view.download().iter());
                        scanned.upload.extend(view.upload().iter());
                        scanned.min_rtt.extend(view.min_rtt().iter());
                        scanned.loss.extend(view.loss().iter());
                        Ok(())
                    })
                    .unwrap();
                prop_assert_eq!(&scanned, &want_batch);
                prop_assert_eq!(scan_stats, want_stats);
            }

            /// Arbitrary byte mutations never panic the decoder — they
            /// either still decode (only when the CRC happens to match)
            /// or fail with a typed error. Both versions.
            #[test]
            fn mutated_containers_fail_typed(
                idx in 0usize..200,
                mask in 1u8..=255,
            ) {
                for bytes in [encode_rows(&rows()), encode_rows_v2(&rows())] {
                    let mut mutated = bytes;
                    let i = idx % mutated.len();
                    mutated[i] ^= mask;
                    let _ = decode(&mutated); // must not panic
                }
            }
        }

        fn rows() -> Vec<NdtTest> {
            super::rows()
        }
    }
}
