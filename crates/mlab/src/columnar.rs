//! The `.ndtc` binary columnar shard container.
//!
//! NDT shards are the largest artifact in a dump tree — at real scale the
//! M-Lab corpus is multi-terabyte — and the text shards spend their cold
//! load almost entirely in per-row float/date parsing. `.ndtc` stores one
//! shard's rows as per-column blocks instead, so a cold load is bounded
//! by disk bandwidth and a handful of `memcpy`-shaped decodes:
//!
//! ```text
//! offset 0   magic  "NDTC"                  (4 bytes)
//! offset 4   version                        (1 byte, currently 1)
//!            row count                      (uvarint)
//!            7 column blocks, fixed order, each:
//!              tag                          (1 byte)
//!              payload length in bytes      (uvarint)
//!              payload                      (see below)
//! footer     row count                     (u64 little-endian)
//!            CRC-32 of every preceding byte (u32 little-endian)
//! ```
//!
//! Column payloads (`n` = row count):
//!
//! * **dates** (tag 1) — days-since-epoch, delta-encoded: the first value
//!   then successive differences, each a zigzag varint.
//! * **country** (tag 2) — dictionary-encoded: dict size (uvarint), dict
//!   entries (2 bytes of alpha-2 each, first-appearance order), then `n`
//!   uvarint dict indices.
//! * **asn** (tag 3) — dictionary-encoded: dict size (uvarint), dict
//!   entries (uvarint raw ASN each), then `n` uvarint dict indices.
//! * **download / upload / min_rtt / loss** (tags 4–7) — `n` IEEE-754
//!   doubles, fixed-width little-endian. Bit patterns are preserved
//!   exactly, so the order-sensitive P² estimators observe the very same
//!   values the text path parses from shortest-roundtrip decimal.
//!
//! **Format evolution rule:** readers reject any version byte other than
//! [`VERSION`]. A layout change — new column, different encoding, moved
//! footer — must bump [`VERSION`]; the magic never changes meaning. The
//! `container_header_is_frozen` test pins the header bytes so a magic
//! edit without a version bump fails CI.
//!
//! Every decode error is a typed [`Error`](lacnet_types::Error) — wrong
//! magic, unknown version, truncated block, checksum mismatch, row-range
//! violations — never a panic.

use crate::ndt::NdtTest;
use lacnet_types::codec::{
    crc32, put_f64, put_ivarint, put_u32, put_u64, put_uvarint, read_f64, read_ivarint, read_u32,
    read_u64, read_uvarint,
};
use lacnet_types::{Asn, CountryCode, Date, Error, Result};
use std::io::Read;

/// The container magic, `NDTC`.
pub const MAGIC: [u8; 4] = *b"NDTC";

/// The current container version. Readers reject any other value; bump
/// this on every layout change (see the format-evolution rule above).
pub const VERSION: u8 = 1;

/// Bytes of the fixed footer: row count (u64) + CRC-32 (u32).
const FOOTER_LEN: usize = 12;

/// Column tags, in the order blocks appear in the container.
const TAGS: [u8; 7] = [1, 2, 3, 4, 5, 6, 7];

/// On-disk NDT shard encodings `lacnet-gen` can write and
/// `ArchiveWorld` can read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardFormat {
    /// One `to_row` line per test (`.tsv`) — the native text format.
    #[default]
    Text,
    /// The `.ndtc` columnar container defined by this module.
    Columnar,
}

impl ShardFormat {
    /// The shard file extension (without the dot).
    pub fn extension(self) -> &'static str {
        match self {
            ShardFormat::Text => "tsv",
            ShardFormat::Columnar => "ndtc",
        }
    }

    /// Parse a CLI flag value (`text` / `columnar`).
    pub fn parse_flag(s: &str) -> Option<ShardFormat> {
        match s {
            "text" => Some(ShardFormat::Text),
            "columnar" => Some(ShardFormat::Columnar),
            _ => None,
        }
    }
}

impl std::fmt::Display for ShardFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ShardFormat::Text => "text",
            ShardFormat::Columnar => "columnar",
        })
    }
}

/// One decoded shard, column-major. Rows are reconstructed on demand by
/// [`ColumnBatch::row`] / [`ColumnBatch::iter`]; the aggregation fast
/// path ([`MonthlyAggregator::observe_columns`]) reads the `countries`,
/// `dates` and `download` columns directly and never materializes rows.
///
/// [`MonthlyAggregator::observe_columns`]: crate::aggregate::MonthlyAggregator::observe_columns
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ColumnBatch {
    dates: Vec<Date>,
    countries: Vec<CountryCode>,
    asns: Vec<Asn>,
    download: Vec<f64>,
    upload: Vec<f64>,
    min_rtt: Vec<f64>,
    loss: Vec<f64>,
}

impl ColumnBatch {
    /// Build a batch from row-major tests.
    pub fn from_rows(rows: &[NdtTest]) -> ColumnBatch {
        let mut b = ColumnBatch::default();
        for t in rows {
            b.dates.push(t.date);
            b.countries.push(t.country);
            b.asns.push(t.asn);
            b.download.push(t.download_mbps);
            b.upload.push(t.upload_mbps);
            b.min_rtt.push(t.min_rtt_ms);
            b.loss.push(t.loss_rate);
        }
        b
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.dates.len()
    }

    /// Whether the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.dates.is_empty()
    }

    /// Reconstruct row `i`.
    pub fn row(&self, i: usize) -> NdtTest {
        NdtTest {
            date: self.dates[i],
            country: self.countries[i],
            asn: self.asns[i],
            download_mbps: self.download[i],
            upload_mbps: self.upload[i],
            min_rtt_ms: self.min_rtt[i],
            loss_rate: self.loss[i],
        }
    }

    /// Iterate the rows in order.
    pub fn iter(&self) -> impl Iterator<Item = NdtTest> + '_ {
        (0..self.len()).map(|i| self.row(i))
    }

    /// The test dates, row order.
    pub fn dates(&self) -> &[Date] {
        &self.dates
    }

    /// The client countries, row order.
    pub fn countries(&self) -> &[CountryCode] {
        &self.countries
    }

    /// The downstream throughputs (Mbit/s), row order.
    pub fn download(&self) -> &[f64] {
        &self.download
    }

    /// Column-wise mirror of [`NdtTest::validate`]: the decoder applies
    /// exactly the range checks the text parser applies per row, so a
    /// corrupt container cannot smuggle out-of-range values past the
    /// aggregation that a corrupt text shard would have rejected.
    fn validate(&self) -> Result<()> {
        if self.download.iter().chain(&self.upload).any(|&v| v < 0.0) {
            return Err(Error::invalid("negative throughput"));
        }
        if self.min_rtt.iter().any(|&v| v < 0.0) {
            return Err(Error::invalid("negative RTT"));
        }
        if self.loss.iter().any(|&v| !(0.0..=1.0).contains(&v)) {
            return Err(Error::invalid("loss rate outside [0,1]"));
        }
        Ok(())
    }
}

/// Encode rows as one `.ndtc` container.
pub fn encode_rows(rows: &[NdtTest]) -> Vec<u8> {
    encode(&ColumnBatch::from_rows(rows))
}

/// Encode a column batch as one `.ndtc` container.
pub fn encode(batch: &ColumnBatch) -> Vec<u8> {
    let n = batch.len();
    let mut out = Vec::with_capacity(64 + n * 36);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    put_uvarint(&mut out, n as u64);

    let block = |out: &mut Vec<u8>, tag: u8, payload: &[u8]| {
        out.push(tag);
        put_uvarint(out, payload.len() as u64);
        out.extend_from_slice(payload);
    };

    // Dates: delta-encoded days-since-epoch.
    let mut payload = Vec::new();
    let mut prev = 0i64;
    for d in &batch.dates {
        let days = d.days_since_epoch();
        put_ivarint(&mut payload, days - prev);
        prev = days;
    }
    block(&mut out, TAGS[0], &payload);

    // Countries: dictionary of alpha-2 codes, first-appearance order.
    payload.clear();
    let mut dict: Vec<CountryCode> = Vec::new();
    let mut indices = Vec::with_capacity(n);
    for &cc in &batch.countries {
        let idx = dict.iter().position(|&d| d == cc).unwrap_or_else(|| {
            dict.push(cc);
            dict.len() - 1
        });
        indices.push(idx as u64);
    }
    put_uvarint(&mut payload, dict.len() as u64);
    for cc in &dict {
        payload.extend_from_slice(cc.as_str().as_bytes());
    }
    for &i in &indices {
        put_uvarint(&mut payload, i);
    }
    block(&mut out, TAGS[1], &payload);

    // ASNs: dictionary of raw ASNs, first-appearance order.
    payload.clear();
    let mut dict: Vec<Asn> = Vec::new();
    let mut indices = Vec::with_capacity(n);
    for &asn in &batch.asns {
        let idx = dict.iter().position(|&d| d == asn).unwrap_or_else(|| {
            dict.push(asn);
            dict.len() - 1
        });
        indices.push(idx as u64);
    }
    put_uvarint(&mut payload, dict.len() as u64);
    for asn in &dict {
        put_uvarint(&mut payload, u64::from(asn.raw()));
    }
    for &i in &indices {
        put_uvarint(&mut payload, i);
    }
    block(&mut out, TAGS[2], &payload);

    // The four float columns, fixed-width little-endian.
    for (tag, col) in [
        (TAGS[3], &batch.download),
        (TAGS[4], &batch.upload),
        (TAGS[5], &batch.min_rtt),
        (TAGS[6], &batch.loss),
    ] {
        payload.clear();
        for &v in col {
            put_f64(&mut payload, v);
        }
        block(&mut out, tag, &payload);
    }

    // Footer: row count again, then the CRC over everything before it.
    put_u64(&mut out, n as u64);
    let crc = crc32(&out);
    put_u32(&mut out, crc);
    out
}

/// Decode one `.ndtc` container. Rejects wrong magic, unknown versions,
/// truncated or oversized blocks, footer/checksum mismatches and
/// out-of-range row values — all as typed errors.
pub fn decode(bytes: &[u8]) -> Result<ColumnBatch> {
    if bytes.len() < MAGIC.len() + 1 + FOOTER_LEN {
        return Err(Error::parse("ndtc container (truncated)", ""));
    }
    if bytes[..4] != MAGIC {
        return Err(Error::parse("ndtc magic", &format!("{:02x?}", &bytes[..4])));
    }
    if bytes[4] != VERSION {
        return Err(Error::parse(
            "ndtc version 1 (readers reject unknown versions)",
            &bytes[4].to_string(),
        ));
    }

    // Verify the footer before trusting any block length.
    let crc_at = bytes.len() - 4;
    let mut pos = crc_at;
    let stored_crc = read_u32(bytes, &mut pos)?;
    if crc32(&bytes[..crc_at]) != stored_crc {
        return Err(Error::parse("ndtc checksum (corrupt container)", ""));
    }
    let mut pos = bytes.len() - FOOTER_LEN;
    let footer_rows = read_u64(bytes, &mut pos)?;

    let body = &bytes[..bytes.len() - FOOTER_LEN];
    let mut pos = MAGIC.len() + 1;
    let n = read_uvarint(body, &mut pos)?;
    if n != footer_rows {
        return Err(Error::parse(
            "ndtc footer row count",
            &footer_rows.to_string(),
        ));
    }
    let n = usize::try_from(n).map_err(|_| Error::parse("ndtc row count", ""))?;
    // A row costs at least one byte in every varint column; anything
    // claiming more rows than bytes is corrupt, caught before allocating.
    if n > body.len() {
        return Err(Error::parse("ndtc row count (exceeds container size)", ""));
    }

    let mut blocks: [&[u8]; 7] = [&[]; 7];
    for (slot, &tag) in blocks.iter_mut().zip(&TAGS) {
        let &got = body
            .get(pos)
            .ok_or_else(|| Error::parse("ndtc column block (truncated)", ""))?;
        pos += 1;
        if got != tag {
            return Err(Error::parse("ndtc column tag", &got.to_string()));
        }
        let len = read_uvarint(body, &mut pos)?;
        let len = usize::try_from(len).map_err(|_| Error::parse("ndtc block length", ""))?;
        let end = pos
            .checked_add(len)
            .filter(|&e| e <= body.len())
            .ok_or_else(|| Error::parse("ndtc column block (truncated)", ""))?;
        *slot = &body[pos..end];
        pos = end;
    }
    if pos != body.len() {
        return Err(Error::parse("ndtc container (trailing bytes)", ""));
    }

    let mut batch = ColumnBatch::default();

    // Dates.
    let block = blocks[0];
    let mut pos = 0;
    let mut days = 0i64;
    for _ in 0..n {
        let delta = read_ivarint(block, &mut pos)?;
        days = days
            .checked_add(delta)
            .ok_or_else(|| Error::parse("ndtc date delta (overflow)", ""))?;
        // Keep reconstruction within the civil-date range the rest of
        // the pipeline uses; wildly out-of-range days mean corruption.
        if days.abs() > 4_000_000 {
            return Err(Error::parse("ndtc date (outside civil range)", ""));
        }
        batch.dates.push(Date::from_days_since_epoch(days));
    }
    if pos != block.len() {
        return Err(Error::parse("ndtc date column (trailing bytes)", ""));
    }

    // Countries.
    let block = blocks[1];
    let mut pos = 0;
    let dict_len = read_uvarint(block, &mut pos)? as usize;
    let mut dict = Vec::with_capacity(dict_len.min(256));
    for _ in 0..dict_len {
        let end = pos
            .checked_add(2)
            .filter(|&e| e <= block.len())
            .ok_or_else(|| Error::parse("ndtc country dict (truncated)", ""))?;
        let s = std::str::from_utf8(&block[pos..end])
            .map_err(|_| Error::parse("ndtc country dict entry", ""))?;
        dict.push(CountryCode::new(s)?);
        pos = end;
    }
    for _ in 0..n {
        let idx = read_uvarint(block, &mut pos)? as usize;
        let &cc = dict
            .get(idx)
            .ok_or_else(|| Error::parse("ndtc country dict index", ""))?;
        batch.countries.push(cc);
    }
    if pos != block.len() {
        return Err(Error::parse("ndtc country column (trailing bytes)", ""));
    }

    // ASNs.
    let block = blocks[2];
    let mut pos = 0;
    let dict_len = read_uvarint(block, &mut pos)? as usize;
    let mut dict = Vec::with_capacity(dict_len.min(256));
    for _ in 0..dict_len {
        let raw = read_uvarint(block, &mut pos)?;
        let raw = u32::try_from(raw).map_err(|_| Error::parse("ndtc asn dict entry", ""))?;
        dict.push(Asn(raw));
    }
    for _ in 0..n {
        let idx = read_uvarint(block, &mut pos)? as usize;
        let &asn = dict
            .get(idx)
            .ok_or_else(|| Error::parse("ndtc asn dict index", ""))?;
        batch.asns.push(asn);
    }
    if pos != block.len() {
        return Err(Error::parse("ndtc asn column (trailing bytes)", ""));
    }

    // Float columns.
    for (block, col) in [
        (blocks[3], &mut batch.download),
        (blocks[4], &mut batch.upload),
        (blocks[5], &mut batch.min_rtt),
        (blocks[6], &mut batch.loss),
    ] {
        if block.len() != n * 8 {
            return Err(Error::parse("ndtc float column (wrong size)", ""));
        }
        let mut pos = 0;
        for _ in 0..n {
            col.push(read_f64(block, &mut pos)?);
        }
    }

    batch.validate()?;
    Ok(batch)
}

/// Read one `.ndtc` shard from a reader. The container is checksummed as
/// a whole, so the reader slurps the (bounded, per-country-month) file
/// and verifies it before any value is surfaced; rows then stream lazily
/// off the decoded columns via [`ColumnBatch::iter`].
pub fn read_shard<R: Read>(mut reader: R) -> Result<ColumnBatch> {
    let mut bytes = Vec::new();
    reader
        .read_to_end(&mut bytes)
        .map_err(|e| Error::parse("ndtc shard read", &e.to_string()))?;
    decode(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lacnet_types::country;

    fn rows() -> Vec<NdtTest> {
        vec![
            NdtTest {
                date: Date::ymd(2019, 7, 14),
                country: country::VE,
                asn: Asn(8048),
                download_mbps: 0.87,
                upload_mbps: 0.31,
                min_rtt_ms: 58.2,
                loss_rate: 0.012,
            },
            NdtTest {
                date: Date::ymd(2019, 7, 2),
                country: country::VE,
                asn: Asn(8048),
                download_mbps: 1.25,
                upload_mbps: 0.5,
                min_rtt_ms: 44.0,
                loss_rate: 0.0,
            },
            NdtTest {
                date: Date::ymd(2019, 7, 30),
                country: country::BR,
                asn: Asn(28573),
                download_mbps: 22.5,
                upload_mbps: 11.0,
                min_rtt_ms: 12.0,
                loss_rate: 1.0,
            },
        ]
    }

    #[test]
    fn roundtrip_preserves_rows_exactly() {
        let rows = rows();
        let decoded = decode(&encode_rows(&rows)).unwrap();
        assert_eq!(decoded.len(), rows.len());
        let back: Vec<NdtTest> = decoded.iter().collect();
        assert_eq!(back, rows);
    }

    #[test]
    fn empty_and_single_row_shards_roundtrip() {
        let empty = decode(&encode_rows(&[])).unwrap();
        assert!(empty.is_empty());
        let one = &rows()[..1];
        let decoded = decode(&encode_rows(one)).unwrap();
        assert_eq!(decoded.iter().collect::<Vec<_>>(), one);
    }

    #[test]
    fn container_header_is_frozen() {
        // Format-version guard: the first five bytes of every container
        // are the magic followed by the version constant. Changing the
        // magic without bumping VERSION (or vice versa) breaks this pin
        // and must come with a deliberate fixture update here.
        let bytes = encode_rows(&[]);
        assert_eq!(&bytes[..4], b"NDTC");
        assert_eq!(bytes[4], 1);
        assert_eq!(VERSION, 1, "bump this pin together with the constant");
    }

    #[test]
    fn wrong_magic_is_a_typed_error() {
        let mut bytes = encode_rows(&rows());
        bytes[0] = b'X';
        match decode(&bytes) {
            Err(Error::Parse { expected, .. }) => assert!(expected.contains("magic")),
            other => panic!("expected a magic error, got {other:?}"),
        }
    }

    #[test]
    fn unknown_version_is_rejected() {
        let mut bytes = encode_rows(&rows());
        bytes[4] = VERSION + 1;
        match decode(&bytes) {
            Err(Error::Parse { expected, .. }) => assert!(expected.contains("version")),
            other => panic!("expected a version error, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_footer_is_a_typed_error() {
        let mut bytes = encode_rows(&rows());
        let len = bytes.len();
        bytes[len - 1] ^= 0xFF; // flip CRC bits
        assert!(matches!(decode(&bytes), Err(Error::Parse { .. })));
        let mut bytes = encode_rows(&rows());
        let len = bytes.len();
        bytes[len - 8] ^= 0x01; // corrupt the footer row count (CRC catches it)
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn truncated_container_is_a_typed_error() {
        let bytes = encode_rows(&rows());
        for cut in [0, 3, 5, 8, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                matches!(decode(&bytes[..cut]), Err(Error::Parse { .. })),
                "truncation at {cut} must fail typed"
            );
        }
    }

    #[test]
    fn corrupted_body_is_caught_by_the_checksum() {
        let mut bytes = encode_rows(&rows());
        bytes[10] ^= 0x40;
        match decode(&bytes) {
            Err(Error::Parse { expected, .. }) => assert!(expected.contains("checksum")),
            other => panic!("expected a checksum error, got {other:?}"),
        }
    }

    #[test]
    fn out_of_range_values_are_rejected_like_the_text_path() {
        let mut bad = rows();
        bad[0].loss_rate = 1.5;
        let mut bytes = encode_rows(&bad);
        // Re-seal the container so only the range check can object.
        let len = bytes.len();
        bytes.truncate(len - 4);
        let crc = crc32(&bytes);
        put_u32(&mut bytes, crc);
        assert!(matches!(decode(&bytes), Err(Error::Invalid { .. })));
    }

    #[test]
    fn shard_format_flags() {
        assert_eq!(ShardFormat::parse_flag("text"), Some(ShardFormat::Text));
        assert_eq!(
            ShardFormat::parse_flag("columnar"),
            Some(ShardFormat::Columnar)
        );
        assert_eq!(ShardFormat::parse_flag("parquet"), None);
        assert_eq!(ShardFormat::Text.extension(), "tsv");
        assert_eq!(ShardFormat::Columnar.extension(), "ndtc");
        assert_eq!(ShardFormat::Columnar.to_string(), "columnar");
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        fn arb_row(day: u8, cc: usize, asn: u32, f: (f64, f64, f64, f64)) -> NdtTest {
            let codes = [country::VE, country::BR, country::AR, country::UY];
            NdtTest {
                date: Date::ymd(2007 + (asn % 17) as i32, 1 + (asn % 12) as u8, day),
                country: codes[cc % codes.len()],
                asn: Asn(asn),
                download_mbps: f.0,
                upload_mbps: f.1,
                min_rtt_ms: f.2,
                loss_rate: f.3,
            }
        }

        proptest! {
            /// text shard → columnar encode → decode → text is
            /// byte-identical for arbitrary generated shards, including
            /// empty and single-row ones (`size 0..` covers both).
            #[test]
            fn text_columnar_text_is_byte_identical(
                specs in proptest::collection::vec(
                    (1u8..=28, 0usize..4, 1u32..400_000,
                     (0.0f64..500.0, 0.0f64..200.0, 0.0f64..900.0, 0.0f64..1.0)),
                    0..40,
                )
            ) {
                let rows: Vec<NdtTest> = specs
                    .into_iter()
                    .map(|(day, cc, asn, f)| arb_row(day, cc, asn, f))
                    .collect();
                let text: String = rows.iter().map(|r| r.to_row() + "\n").collect();
                let decoded = decode(&encode_rows(&rows)).unwrap();
                let back: String = decoded.iter().map(|r| r.to_row() + "\n").collect();
                prop_assert_eq!(back, text);
            }

            /// Arbitrary byte mutations never panic the decoder — they
            /// either still decode (only when the CRC happens to match)
            /// or fail with a typed error.
            #[test]
            fn mutated_containers_fail_typed(
                idx in 0usize..200,
                mask in 1u8..=255,
            ) {
                let bytes = encode_rows(&rows());
                let mut mutated = bytes.clone();
                let i = idx % mutated.len();
                mutated[i] ^= mask;
                let _ = decode(&mutated); // must not panic
            }
        }

        fn rows() -> Vec<NdtTest> {
            super::rows()
        }
    }
}
