//! Top-site scrape observations.

use lacnet_types::{CountryCode, Result};
use std::collections::BTreeSet;

/// What the scraper learned about one site, as seen from a local VPN
/// vantage point.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteObservation {
    /// Registered domain.
    pub domain: String,
    /// Whether the landing page is served over HTTPS.
    pub https: bool,
    /// Authoritative DNS operator, and whether it is a third party.
    pub dns_provider: Provider,
    /// Certificate authority (empty provider when not HTTPS).
    pub ca: Provider,
    /// CDN fronting the site, if any; `None` means origin-hosted.
    pub cdn: Option<Provider>,
}

/// A serving-infrastructure provider.
#[derive(Debug, Clone, PartialEq)]
pub struct Provider {
    /// Provider name (e.g. `"Cloudflare"`, `"self-hosted"`).
    pub name: String,
    /// Whether the provider is a third party relative to the site owner.
    pub third_party: bool,
}

impl Provider {
    /// A third-party provider.
    pub fn third_party(name: &str) -> Self {
        Provider {
            name: name.into(),
            third_party: true,
        }
    }

    /// Self-hosted / first-party infrastructure.
    pub fn self_hosted() -> Self {
        Provider {
            name: "self-hosted".into(),
            third_party: false,
        }
    }
}

/// One country's top-site scrape.
#[derive(Debug, Clone, PartialEq)]
pub struct CountryTopSites {
    /// The vantage/ranking country.
    pub country: CountryCode,
    /// Observed sites, rank order.
    pub sites: Vec<SiteObservation>,
}

impl CountryTopSites {
    /// Create an empty list.
    pub fn new(country: CountryCode) -> Self {
        CountryTopSites {
            country,
            sites: Vec::new(),
        }
    }

    /// The domains in this list.
    pub fn domains(&self) -> BTreeSet<&str> {
        self.sites.iter().map(|s| s.domain.as_str()).collect()
    }

    /// JSON serialisation.
    pub fn to_json(&self) -> String {
        lacnet_types::json::to_string(self)
    }

    /// Parse from JSON.
    pub fn from_json(text: &str) -> Result<Self> {
        lacnet_types::json::from_str(text)
    }
}

lacnet_types::impl_json_struct!(Provider { name, third_party });
lacnet_types::impl_json_struct!(SiteObservation {
    domain,
    https,
    dns_provider,
    ca,
    cdn
});
lacnet_types::impl_json_struct!(CountryTopSites { country, sites });

/// For each country, the subset of its sites whose domain appears in *no
/// other* country's list — the paper's unique-top-sites filter.
pub fn unique_sites(lists: &[CountryTopSites]) -> Vec<CountryTopSites> {
    use std::collections::BTreeMap;
    let mut seen_in: BTreeMap<&str, usize> = BTreeMap::new();
    for list in lists {
        for d in list.domains() {
            *seen_in.entry(d).or_insert(0) += 1;
        }
    }
    lists
        .iter()
        .map(|list| CountryTopSites {
            country: list.country,
            sites: list
                .sites
                .iter()
                .filter(|s| seen_in[s.domain.as_str()] == 1)
                .cloned()
                .collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lacnet_types::country;

    pub(crate) fn obs(
        domain: &str,
        https: bool,
        dns3p: bool,
        ca3p: bool,
        cdn: Option<&str>,
    ) -> SiteObservation {
        SiteObservation {
            domain: domain.into(),
            https,
            dns_provider: if dns3p {
                Provider::third_party("Cloudflare DNS")
            } else {
                Provider::self_hosted()
            },
            ca: if ca3p {
                Provider::third_party("DigiCert")
            } else {
                Provider::self_hosted()
            },
            cdn: cdn.map(Provider::third_party),
        }
    }

    #[test]
    fn unique_filter_drops_shared_sites() {
        let ve = CountryTopSites {
            country: country::VE,
            sites: vec![
                obs("google.com", true, true, true, Some("Google")),
                obs("banco-venezuela.ve", true, false, true, None),
            ],
        };
        let ar = CountryTopSites {
            country: country::AR,
            sites: vec![
                obs("google.com", true, true, true, Some("Google")),
                obs("lanacion.ar", true, true, true, Some("Fastly")),
            ],
        };
        let unique = unique_sites(&[ve, ar]);
        assert_eq!(unique[0].sites.len(), 1);
        assert_eq!(unique[0].sites[0].domain, "banco-venezuela.ve");
        assert_eq!(unique[1].sites.len(), 1);
        assert_eq!(unique[1].sites[0].domain, "lanacion.ar");
    }

    #[test]
    fn json_roundtrip() {
        let list = CountryTopSites {
            country: country::VE,
            sites: vec![obs("el-sitio.ve", false, false, false, None)],
        };
        let back = CountryTopSites::from_json(&list.to_json()).unwrap();
        assert_eq!(back, list);
        assert!(CountryTopSites::from_json("[").is_err());
    }

    #[test]
    fn empty_lists_are_fine() {
        let unique = unique_sites(&[CountryTopSites::new(country::VE)]);
        assert!(unique[0].sites.is_empty());
        assert!(unique_sites(&[]).is_empty());
    }
}
