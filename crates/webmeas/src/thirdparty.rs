//! Third-party adoption metrics (the four Fig. 19 panels).

use crate::scrape::CountryTopSites;
use lacnet_types::CountryCode;
use std::collections::BTreeMap;

/// The four adoption dimensions of Fig. 19.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ServiceKind {
    /// Third-party authoritative DNS.
    Dns,
    /// HTTPS on the landing page.
    Https,
    /// Third-party certificate authority.
    Ca,
    /// Third-party CDN.
    Cdn,
}

impl ServiceKind {
    /// All four dimensions in the paper's panel order.
    pub const ALL: [ServiceKind; 4] = [
        ServiceKind::Dns,
        ServiceKind::Https,
        ServiceKind::Ca,
        ServiceKind::Cdn,
    ];

    /// Panel label.
    pub const fn label(self) -> &'static str {
        match self {
            ServiceKind::Dns => "DNS",
            ServiceKind::Https => "HTTPS",
            ServiceKind::Ca => "CA",
            ServiceKind::Cdn => "CDN",
        }
    }
}

/// Adoption fractions per country and dimension.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AdoptionReport {
    /// `(country, kind) → fraction in [0, 1]`.
    fractions: BTreeMap<(CountryCode, ServiceKind), f64>,
}

impl AdoptionReport {
    /// Compute adoption over a set of (already unique-filtered) country
    /// top-site lists. Countries with empty lists are omitted.
    pub fn compute(lists: &[CountryTopSites]) -> Self {
        let mut fractions = BTreeMap::new();
        for list in lists {
            let n = list.sites.len();
            if n == 0 {
                continue;
            }
            let frac = |count: usize| count as f64 / n as f64;
            let dns = list
                .sites
                .iter()
                .filter(|s| s.dns_provider.third_party)
                .count();
            let https = list.sites.iter().filter(|s| s.https).count();
            let ca = list
                .sites
                .iter()
                .filter(|s| s.https && s.ca.third_party)
                .count();
            let cdn = list
                .sites
                .iter()
                .filter(|s| s.cdn.as_ref().is_some_and(|c| c.third_party))
                .count();
            fractions.insert((list.country, ServiceKind::Dns), frac(dns));
            fractions.insert((list.country, ServiceKind::Https), frac(https));
            fractions.insert((list.country, ServiceKind::Ca), frac(ca));
            fractions.insert((list.country, ServiceKind::Cdn), frac(cdn));
        }
        AdoptionReport { fractions }
    }

    /// The adoption fraction for one country and dimension.
    pub fn get(&self, country: CountryCode, kind: ServiceKind) -> Option<f64> {
        self.fractions.get(&(country, kind)).copied()
    }

    /// Countries present in the report.
    pub fn countries(&self) -> Vec<CountryCode> {
        let mut v: Vec<CountryCode> = self.fractions.keys().map(|&(cc, _)| cc).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Cross-country mean for one dimension (the paper's "regional
    /// average" annotations: DNS 0.32, HTTPS 0.60, CA 0.26, CDN 0.46).
    pub fn regional_mean(&self, kind: ServiceKind) -> Option<f64> {
        let vals: Vec<f64> = self
            .fractions
            .iter()
            .filter(|(&(_, k), _)| k == kind)
            .map(|(_, &v)| v)
            .collect();
        if vals.is_empty() {
            return None;
        }
        Some(vals.iter().sum::<f64>() / vals.len() as f64)
    }

    /// Countries sorted ascending by adoption in one dimension — the bar
    /// order of Fig. 19.
    pub fn ranking(&self, kind: ServiceKind) -> Vec<(CountryCode, f64)> {
        let mut v: Vec<(CountryCode, f64)> = self
            .fractions
            .iter()
            .filter(|(&(_, k), _)| k == kind)
            .map(|(&(cc, _), &f)| (cc, f))
            .collect();
        v.sort_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .expect("fractions are finite")
                .then(a.0.cmp(&b.0))
        });
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scrape::{Provider, SiteObservation};
    use lacnet_types::country;

    fn obs(https: bool, dns3p: bool, ca3p: bool, cdn3p: bool) -> SiteObservation {
        SiteObservation {
            domain: format!("site-{https}-{dns3p}-{ca3p}-{cdn3p}.example"),
            https,
            dns_provider: if dns3p {
                Provider::third_party("NS1")
            } else {
                Provider::self_hosted()
            },
            ca: if ca3p {
                Provider::third_party("LE")
            } else {
                Provider::self_hosted()
            },
            cdn: cdn3p.then(|| Provider::third_party("Cloudflare")),
        }
    }

    fn list(cc: CountryCode, sites: Vec<SiteObservation>) -> CountryTopSites {
        CountryTopSites { country: cc, sites }
    }

    #[test]
    fn fractions_per_dimension() {
        let ve = list(
            country::VE,
            vec![
                obs(true, true, true, false),
                obs(true, false, true, true),
                obs(false, false, false, false),
                obs(true, false, false, false),
            ],
        );
        let report = AdoptionReport::compute(&[ve]);
        assert_eq!(report.get(country::VE, ServiceKind::Https), Some(0.75));
        assert_eq!(report.get(country::VE, ServiceKind::Dns), Some(0.25));
        assert_eq!(report.get(country::VE, ServiceKind::Ca), Some(0.5));
        assert_eq!(report.get(country::VE, ServiceKind::Cdn), Some(0.25));
    }

    #[test]
    fn ca_requires_https() {
        // A site can't have a third-party CA counted without HTTPS.
        let ve = list(country::VE, vec![obs(false, false, true, false)]);
        let report = AdoptionReport::compute(&[ve]);
        assert_eq!(report.get(country::VE, ServiceKind::Ca), Some(0.0));
    }

    #[test]
    fn regional_mean_and_ranking() {
        let ve = list(
            country::VE,
            vec![
                obs(true, false, false, false),
                obs(true, true, false, false),
            ],
        );
        let br = list(country::BR, vec![obs(true, true, true, true)]);
        let report = AdoptionReport::compute(&[ve, br]);
        assert_eq!(report.regional_mean(ServiceKind::Dns), Some(0.75));
        let rank = report.ranking(ServiceKind::Dns);
        assert_eq!(rank[0], (country::VE, 0.5));
        assert_eq!(rank[1], (country::BR, 1.0));
        assert_eq!(report.countries(), vec![country::BR, country::VE]);
    }

    #[test]
    fn empty_lists_omitted() {
        let report = AdoptionReport::compute(&[CountryTopSites::new(country::VE)]);
        assert_eq!(report.get(country::VE, ServiceKind::Https), None);
        assert_eq!(report.regional_mean(ServiceKind::Https), None);
        assert!(report.ranking(ServiceKind::Https).is_empty());
    }
}
