//! Page-resource inventories: the component level of the scrape.
//!
//! Kumar et al.'s method doesn't stop at the landing page — it identifies
//! "the serving infrastructure for each component" a site loads. This
//! module models that inventory: per-page resource lists with the domain
//! and provider classification of every script, style, image and font,
//! and the dependency metrics derived from them (third-party resource
//! share, distinct providers per page — the centralisation signals of
//! the original study).

use crate::scrape::Provider;
use lacnet_types::json::{FromJson, Json, ToJson};
use lacnet_types::{Error, Result};
use std::collections::BTreeSet;

/// What kind of object a resource is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ResourceKind {
    /// JavaScript.
    Script,
    /// Stylesheets.
    Style,
    /// Images.
    Image,
    /// Web fonts.
    Font,
    /// XHR/fetch endpoints.
    Api,
}

impl ResourceKind {
    /// All kinds.
    pub const ALL: [ResourceKind; 5] = [
        ResourceKind::Script,
        ResourceKind::Style,
        ResourceKind::Image,
        ResourceKind::Font,
        ResourceKind::Api,
    ];

    /// The kind's canonical name, as serialised.
    pub fn name(self) -> &'static str {
        match self {
            ResourceKind::Script => "Script",
            ResourceKind::Style => "Style",
            ResourceKind::Image => "Image",
            ResourceKind::Font => "Font",
            ResourceKind::Api => "Api",
        }
    }
}

impl ToJson for ResourceKind {
    fn to_json_value(&self) -> Json {
        Json::Str(self.name().to_owned())
    }
}

impl FromJson for ResourceKind {
    fn from_json_value(v: &Json) -> Result<Self> {
        let name = v
            .as_str()
            .ok_or_else(|| Error::invalid("resource kind must be a string"))?;
        ResourceKind::ALL
            .into_iter()
            .find(|k| k.name() == name)
            .ok_or_else(|| Error::parse("resource kind", name))
    }
}

lacnet_types::impl_json_struct!(Resource {
    domain,
    kind,
    provider
});
lacnet_types::impl_json_struct!(PageResources {
    page_domain,
    resources
});

/// One fetched component of a page.
#[derive(Debug, Clone, PartialEq)]
pub struct Resource {
    /// The domain the component was fetched from.
    pub domain: String,
    /// Component kind.
    pub kind: ResourceKind,
    /// The infrastructure serving it.
    pub provider: Provider,
}

/// The full component inventory of one page.
#[derive(Debug, Clone, PartialEq)]
pub struct PageResources {
    /// The page's registered domain.
    pub page_domain: String,
    /// Every component the page loads.
    pub resources: Vec<Resource>,
}

impl PageResources {
    /// A page with no components yet.
    pub fn new(page_domain: &str) -> Self {
        PageResources {
            page_domain: page_domain.into(),
            resources: Vec::new(),
        }
    }

    /// Components fetched from a different registered domain than the
    /// page's.
    pub fn cross_origin(&self) -> impl Iterator<Item = &Resource> {
        self.resources
            .iter()
            .filter(|r| r.domain != self.page_domain)
    }

    /// Fraction of components served by third-party infrastructure.
    /// `None` for empty inventories.
    pub fn third_party_share(&self) -> Option<f64> {
        if self.resources.is_empty() {
            return None;
        }
        let tp = self
            .resources
            .iter()
            .filter(|r| r.provider.third_party)
            .count();
        Some(tp as f64 / self.resources.len() as f64)
    }

    /// Distinct third-party providers the page depends on.
    pub fn provider_set(&self) -> BTreeSet<&str> {
        self.resources
            .iter()
            .filter(|r| r.provider.third_party)
            .map(|r| r.provider.name.as_str())
            .collect()
    }

    /// Whether losing `provider` would break any component of the page —
    /// the single-provider-dependency signal.
    pub fn depends_on(&self, provider: &str) -> bool {
        self.resources
            .iter()
            .any(|r| r.provider.third_party && r.provider.name == provider)
    }
}

/// Aggregate dependency metrics over many pages (one country's top list).
#[derive(Debug, Clone, PartialEq)]
pub struct DependencyReport {
    /// Mean third-party component share across pages with components.
    pub mean_third_party_share: f64,
    /// Mean number of distinct third-party providers per page.
    pub mean_providers_per_page: f64,
    /// Fraction of pages depending on the single most-used provider.
    pub top_provider_reach: f64,
    /// The most-used provider's name, when any third-party exists.
    pub top_provider: Option<String>,
}

/// Compute the report. Returns `None` when no page has components.
pub fn dependency_report(pages: &[PageResources]) -> Option<DependencyReport> {
    let with: Vec<&PageResources> = pages.iter().filter(|p| !p.resources.is_empty()).collect();
    if with.is_empty() {
        return None;
    }
    let mean_share = with
        .iter()
        .filter_map(|p| p.third_party_share())
        .sum::<f64>()
        / with.len() as f64;
    let mean_providers = with
        .iter()
        .map(|p| p.provider_set().len() as f64)
        .sum::<f64>()
        / with.len() as f64;
    // The provider reaching the most pages.
    let mut counts: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
    for p in &with {
        for name in p.provider_set() {
            *counts.entry(name).or_insert(0) += 1;
        }
    }
    let top = counts.into_iter().max_by_key(|&(_, n)| n);
    Some(DependencyReport {
        mean_third_party_share: mean_share,
        mean_providers_per_page: mean_providers,
        top_provider_reach: top
            .map(|(_, n)| n as f64 / with.len() as f64)
            .unwrap_or(0.0),
        top_provider: top.map(|(name, _)| name.to_owned()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn res(domain: &str, kind: ResourceKind, provider: Provider) -> Resource {
        Resource {
            domain: domain.into(),
            kind,
            provider,
        }
    }

    fn page() -> PageResources {
        PageResources {
            page_domain: "sitio.com.ve".into(),
            resources: vec![
                res("sitio.com.ve", ResourceKind::Image, Provider::self_hosted()),
                res(
                    "cdn.sitio.com.ve",
                    ResourceKind::Style,
                    Provider::self_hosted(),
                ),
                res(
                    "static.cloudflare.com",
                    ResourceKind::Script,
                    Provider::third_party("Cloudflare"),
                ),
                res(
                    "fonts.gstatic.com",
                    ResourceKind::Font,
                    Provider::third_party("Google Fonts"),
                ),
            ],
        }
    }

    #[test]
    fn per_page_metrics() {
        let p = page();
        assert_eq!(p.third_party_share(), Some(0.5));
        assert_eq!(p.cross_origin().count(), 3);
        assert_eq!(p.provider_set().len(), 2);
        assert!(p.depends_on("Cloudflare"));
        assert!(!p.depends_on("Fastly"));
        assert_eq!(PageResources::new("x.com").third_party_share(), None);
    }

    #[test]
    fn aggregate_report() {
        let mut p2 = PageResources::new("otro.com.ve");
        p2.resources.push(res(
            "static.cloudflare.com",
            ResourceKind::Script,
            Provider::third_party("Cloudflare"),
        ));
        let report = dependency_report(&[page(), p2, PageResources::new("vacio.com.ve")]).unwrap();
        assert!((report.mean_third_party_share - 0.75).abs() < 1e-9);
        assert!((report.mean_providers_per_page - 1.5).abs() < 1e-9);
        assert_eq!(report.top_provider.as_deref(), Some("Cloudflare"));
        assert!(
            (report.top_provider_reach - 1.0).abs() < 1e-9,
            "Cloudflare on both pages"
        );
        assert!(dependency_report(&[]).is_none());
        assert!(dependency_report(&[PageResources::new("a.b")]).is_none());
    }

    #[test]
    fn json_roundtrip() {
        let p = page();
        let json = lacnet_types::json::to_string(&p);
        assert!(json.contains("\"kind\":\"Script\""), "{json}");
        let back: PageResources = lacnet_types::json::from_str(&json).unwrap();
        assert_eq!(back, p);
        assert!(lacnet_types::json::from_str::<ResourceKind>("\"Video\"").is_err());
    }
}
