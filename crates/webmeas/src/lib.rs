//! # lacnet-webmeas
//!
//! Third-party dependency measurement in the style of Kumar et al.
//! (SIGMETRICS'23), which Appendix H applies to Venezuela: scrape each
//! country's top sites from a local vantage point, identify the serving
//! infrastructure of every page, and compute the share of sites using
//! (1) HTTPS, (2) third-party DNS, (3) third-party CAs, (4) third-party
//! CDNs. Only sites *unique* to one country's top list are counted, so
//! the metric reflects local hosting practice rather than the global
//! giants every list shares.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod resources;
pub mod scrape;
pub mod thirdparty;

pub use resources::{DependencyReport, PageResources, Resource, ResourceKind};
pub use scrape::{CountryTopSites, SiteObservation};
pub use thirdparty::{AdoptionReport, ServiceKind};
