//! The PeeringDB world: facilities, IXPs, and memberships
//! (Figs. 3, 10, 15, 21 and Table 2).
//!
//! Calibration:
//!
//! * regional facility total 180 (2018-04) → 552 (2024-02), with the
//!   quoted country trajectories (Brazil 102→311, Mexico 11→45,
//!   Chile 18→45, Costa Rica 3→8) and Venezuela's four: Lumen/Cirion
//!   La Urbina and Daycohost (registered 2021-11), GigaPOP Maracaibo and
//!   GlobeNet Maiquetía (2023-01);
//! * the Table-2 roster of networks at Venezuelan facilities, verbatim;
//! * per-country flagship IXPs with membership tuned to the Fig. 10
//!   population shares (AR-IX 62.4%, IX.br 45.53%, PIT Chile 49.57%;
//!   Uruguay and Venezuela have none);
//! * US IXPs with the minimal Venezuelan presence of Fig. 21 (seven
//!   networks, ≈7% of the country's users) and Venezuela's single
//!   regional foothold at Equinix Bogotá (≈4%).

use crate::operators::Operators;
use lacnet_peeringdb::{Facility, Ix, NetFac, NetIxLan, Network, Snapshot, SnapshotArchive};
use lacnet_types::{country, Asn, CountryCode, MonthStamp};

/// Facility-count anchors `(country, at 2018-04, at 2024-02)`.
const FACILITY_ANCHORS: &[(&str, u32, u32)] = &[
    ("BR", 102, 311),
    ("MX", 11, 45),
    ("CL", 18, 45),
    ("CR", 3, 8),
    ("AR", 12, 30),
    ("CO", 8, 25),
    ("PA", 5, 12),
    ("PE", 4, 16),
    ("UY", 3, 8),
    ("EC", 3, 8),
    ("DO", 2, 7),
    ("GT", 2, 5),
    ("TT", 2, 4),
    ("BO", 1, 4),
    ("PY", 1, 4),
    ("SV", 1, 3),
    ("HN", 1, 2),
    ("HT", 0, 1),
    ("NI", 0, 1),
    ("CU", 0, 0),
    ("BZ", 0, 1),
    ("SR", 0, 1),
    ("GY", 0, 1),
    ("CW", 1, 3),
    ("AW", 0, 1),
    ("BQ", 0, 0),
    ("SX", 0, 1),
    ("GF", 0, 1),
];

/// Venezuela's facility timeline: `(name, city, registered)`.
/// "Lumen La Urbina" is renamed "Cirion La Urbina" from October 2022
/// (Lumen sold its Latin American business to Stonepeak).
const VE_FACILITIES: &[(&str, &str, (i32, u8))] = &[
    ("Lumen La Urbina", "Caracas", (2021, 11)),
    ("Daycohost - Caracas", "Caracas", (2021, 11)),
    ("GigaPOP Maracaibo", "Maracaibo", (2023, 1)),
    ("Globenet Maiquetia", "Maiquetia", (2023, 1)),
];

/// Month of the Lumen → Cirion rename.
fn cirion_rename() -> MonthStamp {
    MonthStamp::new(2022, 10)
}

/// Table 2's roster: networks at the La Urbina facility, with the month
/// they connected (arrival order shapes the Fig. 15 growth 1 → 11).
const LA_URBINA_ROSTER: &[(u32, &str, (i32, u8))] = &[
    (8053, "IFX Venezuela", (2021, 11)),
    (265641, "CIX BROADBAND", (2022, 2)),
    (269832, "MDSTELECOM", (2022, 6)),
    (23379, "Blackburn Technologies II", (2022, 9)),
    (270042, "RED DOT TECHNOLOGIES", (2022, 12)),
    (269738, "Chircalnet Telecom", (2023, 3)),
    (267809, "360NET", (2023, 5)),
    (19978, "Cirion - VE", (2023, 7)),
    (21826, "Corporacion Telemic Network", (2023, 9)),
    (21980, "Dayco Telecom", (2023, 11)),
    (269918, "SISTEMAS TELCORP, C.A.", (2024, 1)),
];

/// Daycohost's roster (Table 2).
const DAYCOHOST_ROSTER: &[(u32, (i32, u8))] =
    &[(8053, (2021, 11)), (269832, (2022, 8)), (270042, (2023, 6))];

/// GlobeNet Maiquetía's roster (Table 2).
const GLOBENET_ROSTER: &[(u32, (i32, u8))] = &[(272102, (2023, 6)), (21826, (2023, 10))];

/// Extra `net` rows that exist only in PeeringDB (Table 2 names that are
/// not part of the eyeball cast).
const EXTRA_NETS: &[(u32, &str)] = &[
    (8053, "IFX Venezuela"),
    (265641, "CIX BROADBAND"),
    (269832, "MDSTELECOM"),
    (23379, "Blackburn Technologies II"),
    (270042, "RED DOT TECHNOLOGIES"),
    (269738, "Chircalnet Telecom"),
    (267809, "360NET"),
    (19978, "Cirion - VE"),
    (21980, "Dayco Telecom"),
    (269918, "SISTEMAS TELCORP, C.A."),
    (272102, "BESSER SOLUTIONS"),
];

/// Flagship IXP per country and the share of the domestic eyeball
/// population its membership should cover (Fig. 10's diagonal).
const IXPS: &[(&str, &str, &str, f64)] = &[
    ("AR", "AR-IX", "Buenos Aires", 0.624),
    ("BR", "IX.br (SP)", "Sao Paulo", 0.4553),
    ("CL", "PIT Chile (SCL)", "Santiago", 0.4957),
    ("BO", "PIT.BO", "La Paz", 0.81),
    ("CO", "NAP.CO", "Bogota", 0.12),
    ("CR", "CRIX", "San Jose", 0.38),
    ("CW", "AMS-IX (CW)", "Willemstad", 0.79),
    ("EC", "NAP.EC - UIO", "Quito", 0.64),
    ("GT", "GTIX", "Guatemala City", 0.20),
    ("GY", "Guyanix", "Georgetown", 0.92),
    ("HN", "IXP-HN", "Tegucigalpa", 0.13),
    ("MX", "MEX-IX", "Mexico City", 0.27),
    ("PA", "InteRed (PA)", "Panama City", 0.63),
    ("PE", "Peru IX", "Lima", 0.49),
    ("PY", "IXpy", "Asuncion", 0.86),
    ("SX", "OCIX", "Philipsburg", 0.60),
    ("TT", "TTIX", "Port of Spain", 0.14),
    // Uruguay and Venezuela deliberately absent (§6.2).
];

/// US IXPs of the Fig. 21 matrix (a representative subset of the paper's
/// ~70 columns).
pub const US_IXPS: &[(&str, &str)] = &[
    ("FL-IX", "Miami"),
    ("Equinix Miami", "Miami"),
    ("Equinix Ashburn", "Ashburn"),
    ("DE-CIX New York", "New York"),
    ("NYIIX New York", "New York"),
    ("Equinix Dallas", "Dallas"),
    ("Equinix Chicago", "Chicago"),
    ("Any2West", "Los Angeles"),
    ("SIX Seattle", "Seattle"),
    ("MEX-IX McAllen", "McAllen"),
    ("Equinix Los Angeles", "Los Angeles"),
    ("CIX-ATL", "Atlanta"),
];

/// The Venezuelan networks with US-IXP ports (Fig. 21: seven networks,
/// ≈7% of the country's users): NetUno (4.45%) and Thundernet (2.56%)
/// carry the population; five enterprise networks carry none.
const VE_AT_US_IXPS: &[u32] = &[11562, 272_809, 276_500, 276_501, 276_502, 276_503, 276_504];

/// Builds the monthly PeeringDB archive.
pub struct PeeringDbBuilder<'a> {
    ops: &'a Operators,
    scenario: Option<&'a crate::scenario::Scenario>,
}

impl<'a> PeeringDbBuilder<'a> {
    /// Create a builder over the operator cast, under the default
    /// (Venezuela) scenario.
    pub fn new(ops: &'a Operators) -> Self {
        PeeringDbBuilder {
            ops,
            scenario: None,
        }
    }

    /// Apply a scenario's IXP buildouts: each `[[ixp_buildouts]]` entry
    /// adds an exchange from its opening month, with greedy membership up
    /// to the target population share. Buildouts append after the
    /// historical `ix` table, so a scenario without any reproduces the
    /// historical snapshots exactly.
    pub fn with_scenario(mut self, scenario: &'a crate::scenario::Scenario) -> Self {
        self.scenario = Some(scenario);
        self
    }

    /// Build monthly snapshots over `[start, end]`.
    pub fn build(&self, start: MonthStamp, end: MonthStamp) -> SnapshotArchive {
        let mut archive = SnapshotArchive::new();
        for m in start.through(end) {
            archive.insert(m, self.snapshot(m));
        }
        archive
    }

    /// Interpolated facility count for one country at `m`.
    fn facility_count(cc: &str, m: MonthStamp) -> u32 {
        let Some(&(_, n0, n1)) = FACILITY_ANCHORS.iter().find(|&&(c, ..)| c == cc) else {
            return 0;
        };
        let start = MonthStamp::new(2018, 4);
        let end = MonthStamp::new(2024, 2);
        let t = (start.months_until(m).max(0) as f64 / start.months_until(end) as f64).min(1.0);
        // Slightly convex growth (the region accelerated after 2020).
        let t = t * t * (3.0 - 2.0 * t);
        (n0 as f64 + (n1 as f64 - n0 as f64) * t).round() as u32
    }

    /// One monthly snapshot.
    pub fn snapshot(&self, m: MonthStamp) -> Snapshot {
        let mut snap = Snapshot::new();

        // ——— net table: eyeball cast + PeeringDB-only extras ———
        let mut net_id_of = std::collections::BTreeMap::<Asn, u32>::new();
        let mut next_id = 1u32;
        for op in self.ops.all() {
            // Eyeballs register; so do Venezuelan enterprises (several
            // universities and banks keep PeeringDB records).
            if op.users > 0
                || (op.country == country::VE
                    && op.kind == crate::operators::OperatorKind::Enterprise)
            {
                net_id_of.insert(op.asn, next_id);
                snap.net.push(Network {
                    id: next_id,
                    asn: op.asn,
                    name: op.name.clone(),
                    info_type: "Cable/DSL/ISP".into(),
                });
                next_id += 1;
            }
        }
        for &(asn, name) in EXTRA_NETS {
            if let std::collections::btree_map::Entry::Vacant(slot) = net_id_of.entry(Asn(asn)) {
                slot.insert(next_id);
                snap.net.push(Network {
                    id: next_id,
                    asn: Asn(asn),
                    name: name.into(),
                    info_type: "NSP".into(),
                });
                next_id += 1;
            }
        }

        // ——— fac table ———
        let mut fac_id = 1u32;
        // Venezuela's scripted four.
        let mut ve_fac_ids = Vec::new();
        for &(name, city, (y, mo)) in VE_FACILITIES {
            if m >= MonthStamp::new(y, mo) {
                let name = if name == "Lumen La Urbina" && m >= cirion_rename() {
                    "Cirion La Urbina"
                } else {
                    name
                };
                snap.fac.push(Facility {
                    id: fac_id,
                    name: name.into(),
                    city: city.into(),
                    country: country::VE,
                });
                ve_fac_ids.push((fac_id, name.to_owned()));
                fac_id += 1;
            } else {
                ve_fac_ids.push((0, String::new()));
            }
        }
        // Everyone else: interpolated counts.
        for info in country::LACNIC_REGION {
            if info.code == country::VE {
                continue;
            }
            let n = Self::facility_count(info.code.as_str(), m);
            for k in 0..n {
                snap.fac.push(Facility {
                    id: fac_id,
                    name: format!("{} Facility {}", info.code, k + 1),
                    city: info.capital.into(),
                    country: info.code,
                });
                fac_id += 1;
            }
        }

        // ——— netfac: the Table-2 rosters ———
        let push_roster = |snap: &mut Snapshot, fac_idx: usize, roster: &[(u32, (i32, u8))]| {
            let (fid, _) = &ve_fac_ids[fac_idx];
            if *fid == 0 {
                return;
            }
            for &(asn, (y, mo)) in roster {
                if m >= MonthStamp::new(y, mo) {
                    if let Some(&nid) = net_id_of.get(&Asn(asn)) {
                        snap.netfac.push(NetFac {
                            net_id: nid,
                            fac_id: *fid,
                        });
                    }
                }
            }
        };
        let la_urbina: Vec<(u32, (i32, u8))> =
            LA_URBINA_ROSTER.iter().map(|&(a, _, d)| (a, d)).collect();
        push_roster(&mut snap, 0, &la_urbina);
        push_roster(&mut snap, 1, DAYCOHOST_ROSTER);
        // GigaPOP Maracaibo (index 2) never attracts a network.
        push_roster(&mut snap, 3, GLOBENET_ROSTER);

        // ——— ix table + netixlan ———
        let mut ix_id = 1u32;
        for &(cc, name, city, target_share) in IXPS {
            let cc = CountryCode::of(cc);
            snap.ix.push(Ix {
                id: ix_id,
                name: name.into(),
                city: city.into(),
                country: cc,
            });
            // Greedy membership: largest eyeballs first until the target
            // share of the domestic population is covered.
            let total = self.ops.populations().country_total(cc) as f64;
            let mut covered = 0.0;
            for op in self.ops.eyeballs(cc) {
                if covered / total >= target_share {
                    break;
                }
                // Skip a network that would overshoot the target by more
                // than a few points; a smaller one downstream will fit.
                if (covered + op.users as f64) / total > target_share + 0.05 {
                    continue;
                }
                if let Some(&nid) = net_id_of.get(&op.asn) {
                    snap.netixlan.push(NetIxLan {
                        net_id: nid,
                        ix_id,
                        speed: 10_000,
                    });
                    covered += op.users as f64;
                }
            }
            ix_id += 1;
        }
        // Equinix Bogotá: Venezuela's single regional foothold (§6.2,
        // ≈4% of its users — Viginet).
        snap.ix.push(Ix {
            id: ix_id,
            name: "Equinix Bogota".into(),
            city: "Bogota".into(),
            country: country::CO,
        });
        if let Some(&nid) = net_id_of.get(&Asn(263703)) {
            snap.netixlan.push(NetIxLan {
                net_id: nid,
                ix_id,
                speed: 1_000,
            });
        }
        ix_id += 1;

        // Uruguay's international presence (§6.2): Antel peers at AR-IX,
        // IX.br, IXpy and PIT Chile.
        if let Some(antel) = self.ops.incumbent(country::UY) {
            if let Some(&nid) = net_id_of.get(&antel.asn) {
                for target in ["AR-IX", "IX.br (SP)", "IXpy", "PIT Chile (SCL)"] {
                    if let Some(ix) = snap.ix.iter().find(|i| i.name == target) {
                        snap.netixlan.push(NetIxLan {
                            net_id: nid,
                            ix_id: ix.id,
                            speed: 10_000,
                        });
                    }
                }
            }
        }

        // ——— US IXPs (Fig. 21) ———
        let mut us_ix_ids = Vec::new();
        for &(name, city) in US_IXPS {
            snap.ix.push(Ix {
                id: ix_id,
                name: name.into(),
                city: city.into(),
                country: country::US,
            });
            us_ix_ids.push((name, ix_id));
            ix_id += 1;
        }
        // Brazilian and Mexican networks spread across most US exchanges.
        for cc in [country::BR, country::MX] {
            for (k, op) in self.ops.eyeballs(cc).into_iter().take(4).enumerate() {
                if let Some(&nid) = net_id_of.get(&op.asn) {
                    for (j, &(_, id)) in us_ix_ids.iter().enumerate() {
                        if (j + k) % 2 == 0 {
                            snap.netixlan.push(NetIxLan {
                                net_id: nid,
                                ix_id: id,
                                speed: 100_000,
                            });
                        }
                    }
                }
            }
        }
        // Uruguay: few exchanges, big networks (Equinix Ashburn, Miami,
        // FL-IX).
        if let Some(antel) = self.ops.incumbent(country::UY) {
            if let Some(&nid) = net_id_of.get(&antel.asn) {
                for target in ["Equinix Ashburn", "Equinix Miami", "FL-IX"] {
                    if let Some(&(_, id)) = us_ix_ids.iter().find(|&&(n, _)| n == target) {
                        snap.netixlan.push(NetIxLan {
                            net_id: nid,
                            ix_id: id,
                            speed: 100_000,
                        });
                    }
                }
            }
        }
        // Venezuela: the seven networks, concentrated in Florida.
        for (k, &asn) in VE_AT_US_IXPS.iter().enumerate() {
            if let Some(&nid) = net_id_of.get(&Asn(asn)) {
                let targets: &[&str] = if k == 0 {
                    &["FL-IX", "Equinix Miami"]
                } else {
                    &["FL-IX"]
                };
                for t in targets {
                    if let Some(&(_, id)) = us_ix_ids.iter().find(|&&(n, _)| n == *t) {
                        snap.netixlan.push(NetIxLan {
                            net_id: nid,
                            ix_id: id,
                            speed: 1_000,
                        });
                    }
                }
            }
        }
        // A couple of Argentine and Colombian networks in the US too.
        for cc in [country::AR, country::CO] {
            if let Some(inc) = self.ops.incumbent(cc) {
                if let Some(&nid) = net_id_of.get(&inc.asn) {
                    if let Some(&(_, id)) = us_ix_ids.iter().find(|&&(n, _)| n == "Equinix Miami") {
                        snap.netixlan.push(NetIxLan {
                            net_id: nid,
                            ix_id: id,
                            speed: 100_000,
                        });
                    }
                }
            }
        }

        // ——— scenario IXP buildouts (always last, so the historical ix
        // ids are stable) ———
        if let Some(scenario) = self.scenario {
            for b in &scenario.ixp_buildouts {
                if m < b.open {
                    continue;
                }
                snap.ix.push(Ix {
                    id: ix_id,
                    name: b.name.clone(),
                    city: b.city.clone(),
                    country: b.country,
                });
                let total = self.ops.populations().country_total(b.country) as f64;
                let mut covered = 0.0;
                for op in self.ops.eyeballs(b.country) {
                    if total <= 0.0 || covered / total >= b.target_share {
                        break;
                    }
                    if (covered + op.users as f64) / total > b.target_share + 0.05 {
                        continue;
                    }
                    if let Some(&nid) = net_id_of.get(&op.asn) {
                        snap.netixlan.push(NetIxLan {
                            net_id: nid,
                            ix_id,
                            speed: 10_000,
                        });
                        covered += op.users as f64;
                    }
                }
                ix_id += 1;
            }
        }

        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lacnet_peeringdb::analytics;

    fn archive() -> SnapshotArchive {
        let ops = Operators::generate(42);
        let builder = PeeringDbBuilder::new(&ops);
        builder.build(MonthStamp::new(2018, 4), MonthStamp::new(2024, 2))
    }

    #[test]
    fn fig3_regional_totals() {
        let ops = Operators::generate(42);
        let builder = PeeringDbBuilder::new(&ops);
        let first = builder.snapshot(MonthStamp::new(2018, 4));
        let last = builder.snapshot(MonthStamp::new(2024, 2));
        let count = |s: &Snapshot| s.fac.len();
        assert_eq!(count(&first), 180, "2018-04 regional total");
        assert_eq!(count(&last), 552, "2024-02 regional total");
    }

    #[test]
    fn fig3_country_trajectories() {
        let ops = Operators::generate(42);
        let builder = PeeringDbBuilder::new(&ops);
        let first = builder.snapshot(MonthStamp::new(2018, 4));
        let last = builder.snapshot(MonthStamp::new(2024, 2));
        let count = |s: &Snapshot, cc: &str| s.facilities_in(CountryCode::of(cc)).len();
        assert_eq!((count(&first, "BR"), count(&last, "BR")), (102, 311));
        assert_eq!((count(&first, "MX"), count(&last, "MX")), (11, 45));
        assert_eq!((count(&first, "CL"), count(&last, "CL")), (18, 45));
        assert_eq!((count(&first, "CR"), count(&last, "CR")), (3, 8));
        assert_eq!((count(&first, "VE"), count(&last, "VE")), (0, 4));
    }

    #[test]
    fn ve_facility_timeline_and_rename() {
        let ops = Operators::generate(42);
        let builder = PeeringDbBuilder::new(&ops);
        let s_2022 = builder.snapshot(MonthStamp::new(2022, 2));
        assert_eq!(
            s_2022.facilities_in(country::VE).len(),
            2,
            "two registered in 2021"
        );
        assert!(s_2022.fac.iter().any(|f| f.name == "Lumen La Urbina"));
        let s_2023 = builder.snapshot(MonthStamp::new(2023, 2));
        assert_eq!(s_2023.facilities_in(country::VE).len(), 4);
        assert!(
            s_2023.fac.iter().any(|f| f.name == "Cirion La Urbina"),
            "renamed after Lumen sale"
        );
        assert!(!s_2023.fac.iter().any(|f| f.name == "Lumen La Urbina"));
    }

    #[test]
    fn fig15_la_urbina_grows_to_eleven() {
        let arch = archive();
        let fp = analytics::FacilityPresence::compute(&arch, country::VE);
        assert_eq!(
            fp.latest_count("La Urbina"),
            Some(11),
            "Cirion peaks at 11 networks"
        );
        assert_eq!(
            fp.latest_count("GigaPOP"),
            Some(0),
            "GigaPOP never attracts networks"
        );
        assert_eq!(fp.latest_count("Daycohost"), Some(3));
        assert_eq!(fp.latest_count("Globenet"), Some(2));
    }

    #[test]
    fn table2_roster() {
        let arch = archive();
        let roster = analytics::facility_roster(&arch, country::VE);
        let cirion = &roster["Cirion La Urbina"];
        assert!(cirion.contains(&Asn(8053)), "IFX");
        assert!(cirion.contains(&Asn(21826)), "Telemic");
        assert!(cirion.contains(&Asn(269918)), "Telcorp");
        assert_eq!(cirion.len(), 11);
        assert_eq!(roster["Globenet Maiquetia"].len(), 2);
    }

    #[test]
    fn fig10_diagonal_shares() {
        let ops = Operators::generate(42);
        let arch = archive();
        let largest = analytics::largest_ixp_members(
            &arch,
            &[
                country::AR,
                country::BR,
                country::CL,
                country::UY,
                country::VE,
            ],
        );
        let share = |cc: CountryCode| {
            let (_, members) = &largest[&cc];
            let set: std::collections::BTreeSet<Asn> = members.iter().copied().collect();
            ops.populations().share_of(cc, &set)
        };
        assert!(
            (share(country::AR) - 0.624).abs() < 0.15,
            "AR {}",
            share(country::AR)
        );
        assert!(
            (share(country::BR) - 0.455).abs() < 0.15,
            "BR {}",
            share(country::BR)
        );
        assert!(
            (share(country::CL) - 0.496).abs() < 0.15,
            "CL {}",
            share(country::CL)
        );
        assert!(!largest.contains_key(&country::UY), "no Uruguayan IXP");
        assert!(!largest.contains_key(&country::VE), "no Venezuelan IXP");
    }

    #[test]
    fn ve_single_foothold_at_equinix_bogota() {
        let ops = Operators::generate(42);
        let arch = archive();
        let (_, snap) = arch.latest().unwrap();
        let bogota = snap.ix.iter().find(|i| i.name == "Equinix Bogota").unwrap();
        let members = snap.networks_at_ixp(bogota.id);
        let ve_members: Vec<Asn> = members
            .into_iter()
            .filter(|a| ops.by_asn(*a).map(|o| o.country) == Some(country::VE))
            .collect();
        assert_eq!(ve_members, vec![Asn(263703)], "Viginet only");
        let set: std::collections::BTreeSet<Asn> = ve_members.into_iter().collect();
        let share = ops.populations().share_of(country::VE, &set);
        assert!((share - 0.04).abs() < 0.02, "≈4% of VE users: {share}");
    }

    #[test]
    fn fig21_ve_presence_in_us_is_minimal() {
        let ops = Operators::generate(42);
        let arch = archive();
        let us = analytics::ixp_members_in(&arch, country::US);
        assert!(!us.is_empty());
        let mut ve_networks = std::collections::BTreeSet::new();
        for (_, members) in &us {
            for &a in members {
                if ops.by_asn(a).map(|o| o.country) == Some(country::VE) {
                    ve_networks.insert(a);
                }
            }
        }
        assert_eq!(ve_networks.len(), 7);
        assert!(
            (7..=7).contains(&ve_networks.len()),
            "{} VE networks in the US",
            ve_networks.len()
        );
        let share = ops.populations().share_of(country::VE, &ve_networks);
        assert!((0.06..=0.08).contains(&share), "≈7% of VE users: {share}");
    }

    #[test]
    fn snapshots_validate_and_roundtrip() {
        let ops = Operators::generate(42);
        let builder = PeeringDbBuilder::new(&ops);
        let snap = builder.snapshot(MonthStamp::new(2023, 6));
        snap.validate().unwrap();
        let back = Snapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
    }
}
