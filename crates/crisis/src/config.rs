//! World-generation configuration and the study's observation windows.

use lacnet_types::MonthStamp;

/// Configuration for one generated world.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorldConfig {
    /// Master seed; every dataset derives its own substream from it.
    pub seed: u64,
    /// First month of the macro-economy model (the paper's Fig. 1 starts
    /// in 1980).
    pub economy_start: MonthStamp,
    /// Last month generated everywhere (the paper's data ends early 2024).
    pub end: MonthStamp,
    /// Scale factor on crowdsourced test volumes: 1.0 approximates the
    /// paper's per-country monthly volumes divided by 1000 (the real
    /// archive is 447M rows; the default world generates ≈450k). Raise it
    /// for benchmark stress runs.
    pub mlab_volume_scale: f64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            seed: 0x0005_ECC0_2024,
            economy_start: MonthStamp::new(1980, 1),
            end: MonthStamp::new(2024, 2),
            mlab_volume_scale: 1.0,
        }
    }
}

impl WorldConfig {
    /// A smaller, faster world for unit tests: same structure, lower
    /// M-Lab volume.
    pub fn test() -> Self {
        WorldConfig {
            mlab_volume_scale: 0.4,
            ..Default::default()
        }
    }
}

/// Observation windows of each dataset, as the paper states them.
pub mod windows {
    use lacnet_types::MonthStamp;

    /// CAIDA AS relationships: since January 1998 (§3.2).
    pub fn serial1_start() -> MonthStamp {
        MonthStamp::new(1998, 1)
    }

    /// Prefix-to-AS and delegation snapshots: since 2008 (§4).
    pub fn pfx2as_start() -> MonthStamp {
        MonthStamp::new(2008, 1)
    }

    /// PeeringDB schema v2: since April 2018 (§3.1).
    pub fn peeringdb_start() -> MonthStamp {
        MonthStamp::new(2018, 4)
    }

    /// RIPE Atlas CHAOS built-ins analysed since 2016 (§3.1).
    pub fn chaos_start() -> MonthStamp {
        MonthStamp::new(2016, 1)
    }

    /// GPDNS traceroute campaign: since March 2014 (§3.3).
    pub fn gpdns_start() -> MonthStamp {
        MonthStamp::new(2014, 3)
    }

    /// M-Lab NDT: since July 2007 (§3.3).
    pub fn mlab_start() -> MonthStamp {
        MonthStamp::new(2007, 7)
    }

    /// IPv6 adoption panel: 2018–2023 (Fig. 5).
    pub fn ipv6_start() -> MonthStamp {
        MonthStamp::new(2018, 1)
    }

    /// Off-net artifacts: 2013–2021 (§5.5).
    pub fn offnets_start() -> MonthStamp {
        MonthStamp::new(2013, 1)
    }

    /// Off-net artifacts end (Gigis et al. coverage).
    pub fn offnets_end() -> MonthStamp {
        MonthStamp::new(2021, 12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_cover_every_window() {
        let cfg = WorldConfig::default();
        assert!(cfg.economy_start < windows::serial1_start());
        assert!(windows::serial1_start() < windows::mlab_start());
        assert!(windows::mlab_start() < windows::pfx2as_start());
        assert!(windows::gpdns_start() < windows::chaos_start());
        assert!(windows::offnets_end() < cfg.end);
        assert!(cfg.mlab_volume_scale > 0.0);
    }

    #[test]
    fn test_config_is_smaller() {
        assert!(WorldConfig::test().mlab_volume_scale < WorldConfig::default().mlab_volume_scale);
    }
}
