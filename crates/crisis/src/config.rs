//! World-generation configuration and the study's observation windows.

use lacnet_types::{CountryCode, Error, MonthStamp, Result};

/// Configuration for one generated world.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorldConfig {
    /// Master seed; every dataset derives its own substream from it.
    pub seed: u64,
    /// First month of the macro-economy model (the paper's Fig. 1 starts
    /// in 1980).
    pub economy_start: MonthStamp,
    /// Last month generated everywhere (the paper's data ends early 2024).
    pub end: MonthStamp,
    /// Scale factor on crowdsourced test volumes: 1.0 approximates the
    /// paper's per-country monthly volumes divided by 1000 (the real
    /// archive is 447M rows; the default world generates ≈450k). Raise it
    /// for benchmark stress runs.
    pub mlab_volume_scale: f64,
    /// Optional per-country NDT volume boost `(country, factor)`, applied
    /// on top of [`mlab_volume_scale`] for that one country. This is the
    /// single-country knob the incremental-refresh machinery keys on: a
    /// re-dump after changing it regenerates only that country's shards.
    ///
    /// [`mlab_volume_scale`]: WorldConfig::mlab_volume_scale
    pub mlab_country_boost: Option<(CountryCode, f64)>,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            seed: 0x0005_ECC0_2024,
            economy_start: MonthStamp::new(1980, 1),
            end: MonthStamp::new(2024, 2),
            mlab_volume_scale: 1.0,
            mlab_country_boost: None,
        }
    }
}

impl WorldConfig {
    /// A smaller, faster world for unit tests: same structure, lower
    /// M-Lab volume.
    pub fn test() -> Self {
        WorldConfig {
            mlab_volume_scale: 0.4,
            ..Default::default()
        }
    }

    /// The effective NDT volume scale for `cc`: the global
    /// [`mlab_volume_scale`] times the per-country boost when `cc` is the
    /// boosted country.
    ///
    /// [`mlab_volume_scale`]: WorldConfig::mlab_volume_scale
    pub fn mlab_scale_for(&self, cc: CountryCode) -> f64 {
        match self.mlab_country_boost {
            Some((boosted, factor)) if boosted == cc => self.mlab_volume_scale * factor,
            _ => self.mlab_volume_scale,
        }
    }

    /// Serialise as the archive's config sidecar (`world/config.tsv`):
    /// one `key<TAB>value` line per field. Floats use shortest-roundtrip
    /// formatting, so `parse(to_text(c)) == c` exactly — an archive
    /// records precisely the world that produced it. The optional
    /// `mlab_country_boost` line is written only when the knob is set.
    pub fn to_text(&self) -> String {
        let mut text = format!(
            "# lacnet world config\nseed\t{}\neconomy_start\t{}\nend\t{}\nmlab_volume_scale\t{}\n",
            self.seed, self.economy_start, self.end, self.mlab_volume_scale,
        );
        if let Some((cc, factor)) = self.mlab_country_boost {
            text.push_str(&format!("mlab_country_boost\t{cc}:{factor}\n"));
        }
        text
    }

    /// Parse a config sidecar written by [`to_text`]. The four scalar
    /// keys are required (`mlab_country_boost` is optional); unknown keys
    /// are rejected so a stale sidecar cannot be silently misread.
    ///
    /// [`to_text`]: WorldConfig::to_text
    pub fn parse(text: &str) -> Result<Self> {
        let mut cfg = WorldConfig::default();
        let mut seen = [false; 4];
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once('\t')
                .ok_or_else(|| Error::parse("config line (key<TAB>value)", line))?;
            match key {
                "seed" => {
                    cfg.seed = value
                        .parse()
                        .map_err(|_| Error::parse("config seed", value))?;
                    seen[0] = true;
                }
                "economy_start" => {
                    cfg.economy_start = value.parse()?;
                    seen[1] = true;
                }
                "end" => {
                    cfg.end = value.parse()?;
                    seen[2] = true;
                }
                "mlab_volume_scale" => {
                    cfg.mlab_volume_scale = value
                        .parse()
                        .map_err(|_| Error::parse("config mlab_volume_scale", value))?;
                    seen[3] = true;
                }
                "mlab_country_boost" => {
                    let (cc, factor) = value.split_once(':').ok_or_else(|| {
                        Error::parse("config mlab_country_boost (CC:factor)", value)
                    })?;
                    cfg.mlab_country_boost = Some((
                        CountryCode::new(cc)?,
                        factor
                            .parse()
                            .map_err(|_| Error::parse("config mlab_country_boost factor", value))?,
                    ));
                }
                other => return Err(Error::parse("known config key", other)),
            }
        }
        if seen != [true; 4] {
            return Err(Error::parse("complete config sidecar", text));
        }
        Ok(cfg)
    }
}

/// Observation windows of each dataset, as the paper states them.
pub mod windows {
    use lacnet_types::MonthStamp;

    /// CAIDA AS relationships: since January 1998 (§3.2).
    pub fn serial1_start() -> MonthStamp {
        MonthStamp::new(1998, 1)
    }

    /// Prefix-to-AS and delegation snapshots: since 2008 (§4).
    pub fn pfx2as_start() -> MonthStamp {
        MonthStamp::new(2008, 1)
    }

    /// PeeringDB schema v2: since April 2018 (§3.1).
    pub fn peeringdb_start() -> MonthStamp {
        MonthStamp::new(2018, 4)
    }

    /// RIPE Atlas CHAOS built-ins analysed since 2016 (§3.1).
    pub fn chaos_start() -> MonthStamp {
        MonthStamp::new(2016, 1)
    }

    /// GPDNS traceroute campaign: since March 2014 (§3.3).
    pub fn gpdns_start() -> MonthStamp {
        MonthStamp::new(2014, 3)
    }

    /// M-Lab NDT: since July 2007 (§3.3).
    pub fn mlab_start() -> MonthStamp {
        MonthStamp::new(2007, 7)
    }

    /// IPv6 adoption panel: 2018–2023 (Fig. 5).
    pub fn ipv6_start() -> MonthStamp {
        MonthStamp::new(2018, 1)
    }

    /// Off-net artifacts: 2013–2021 (§5.5).
    pub fn offnets_start() -> MonthStamp {
        MonthStamp::new(2013, 1)
    }

    /// Off-net artifacts end (Gigis et al. coverage).
    pub fn offnets_end() -> MonthStamp {
        MonthStamp::new(2021, 12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_cover_every_window() {
        let cfg = WorldConfig::default();
        assert!(cfg.economy_start < windows::serial1_start());
        assert!(windows::serial1_start() < windows::mlab_start());
        assert!(windows::mlab_start() < windows::pfx2as_start());
        assert!(windows::gpdns_start() < windows::chaos_start());
        assert!(windows::offnets_end() < cfg.end);
        assert!(cfg.mlab_volume_scale > 0.0);
    }

    #[test]
    fn test_config_is_smaller() {
        assert!(WorldConfig::test().mlab_volume_scale < WorldConfig::default().mlab_volume_scale);
    }

    #[test]
    fn sidecar_roundtrip_is_exact() {
        for cfg in [
            WorldConfig::default(),
            WorldConfig::test(),
            WorldConfig {
                seed: 42,
                economy_start: MonthStamp::new(1999, 11),
                end: MonthStamp::new(2020, 3),
                mlab_volume_scale: 0.123456789,
                mlab_country_boost: None,
            },
            WorldConfig {
                mlab_country_boost: Some((lacnet_types::country::VE, 1.75)),
                ..WorldConfig::test()
            },
        ] {
            assert_eq!(WorldConfig::parse(&cfg.to_text()).unwrap(), cfg);
        }
    }

    #[test]
    fn country_boost_scales_exactly_one_country() {
        use lacnet_types::country;
        let cfg = WorldConfig {
            mlab_volume_scale: 0.5,
            mlab_country_boost: Some((country::VE, 3.0)),
            ..WorldConfig::default()
        };
        assert_eq!(cfg.mlab_scale_for(country::VE), 1.5);
        assert_eq!(cfg.mlab_scale_for(country::BR), 0.5);
        assert_eq!(
            WorldConfig::default().mlab_scale_for(country::VE),
            WorldConfig::default().mlab_volume_scale
        );
        assert!(WorldConfig::parse("seed\t1\nmlab_country_boost\tVE\n").is_err());
    }

    #[test]
    fn sidecar_parse_rejects_bad_input() {
        assert!(WorldConfig::parse("").is_err(), "missing keys");
        assert!(WorldConfig::parse("seed\t1\n").is_err(), "incomplete");
        let full = WorldConfig::default().to_text();
        assert!(WorldConfig::parse(&format!("{full}bogus\t1\n")).is_err());
        assert!(WorldConfig::parse(&full.replace('\t', " ")).is_err());
    }
}
