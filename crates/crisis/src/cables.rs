//! The region's submarine-cable build-out (Fig. 4).
//!
//! A curated cable table shaped on the public record: 13 systems serving
//! the LACNIC region by the end of 2000, 54 by early 2024. The Venezuelan
//! story is exact — four systems reached its shores before 2001, and the
//! *only* addition since is ALBA-1 to Cuba (2011). Per-country counts
//! match the paper's quoted trajectories: Brazil 5→17, Colombia 5→13,
//! Chile 2→9, Argentina 3→9; Nicaragua and Haiti never expand; Honduras,
//! Aruba and Belize add exactly one.

use lacnet_telegeo::{Cable, CableMap, LandingPoint};
use lacnet_types::{country, CountryCode, Date, GeoPoint};

/// `(name, rfs year, rfs month, landing countries, length km)`.
type Row = (&'static str, i32, u8, &'static [&'static str], f64);

/// The cable table. RFS dates before 2001 form the paper's "13 cables by
/// 2000" baseline; the rest are the post-2000 wave Venezuela missed.
const CABLES: &[Row] = &[
    // ——— In service by end-2000 (13 systems) ———
    (
        "PAN-AM",
        1999,
        1,
        &["VE", "CO", "EC", "PE", "CL", "PA", "AW"],
        7_225.0,
    ),
    (
        "Americas-II",
        2000,
        8,
        &["VE", "BR", "TT", "GF", "CW"],
        8_373.0,
    ),
    ("GlobeNet", 2000, 11, &["VE", "BR", "CO"], 23_500.0),
    ("CANTV Festoon", 1998, 5, &["VE", "CW"], 1_300.0),
    (
        "South American Crossing (SAC)",
        2000,
        9,
        &["BR", "AR", "CL", "PE", "CO", "PA"],
        20_000.0,
    ),
    ("Atlantis-2", 2000, 2, &["BR", "AR"], 8_500.0),
    ("UNISUR", 1995, 3, &["BR", "UY", "AR"], 1_715.0),
    ("Columbus-II", 1994, 6, &["MX"], 12_200.0),
    ("Maya-1", 2000, 10, &["MX", "HN", "CR", "PA", "CO"], 4_400.0),
    (
        "ARCOS",
        2000,
        12,
        &["MX", "BZ", "HN", "GT", "NI", "CR", "PA", "CO", "DO"],
        8_600.0,
    ),
    ("TCS-1", 1995, 1, &["TT"], 320.0),
    ("ECFS", 1995, 9, &["TT"], 1_730.0),
    ("Antillas-1", 1997, 4, &["DO", "HT"], 650.0),
    // ——— The post-2000 wave (41 systems; VE only in ALBA-1) ———
    (
        "SAm-1",
        2001,
        3,
        &["BR", "AR", "CL", "PE", "EC", "GT"],
        25_000.0,
    ),
    ("ALBA-1", 2011, 2, &["VE", "CU"], 1_860.0),
    ("Fibralink", 2006, 8, &["DO"], 1_100.0),
    ("East-West", 2008, 6, &["TT", "GY", "SR"], 1_700.0),
    ("AMX-1", 2014, 2, &["BR", "CO", "MX", "GT", "DO"], 17_800.0),
    ("PCCS", 2015, 9, &["EC", "PA", "CO", "AW", "CW"], 6_000.0),
    ("Monet", 2017, 12, &["BR"], 10_556.0),
    ("Seabras-1", 2017, 9, &["BR"], 10_800.0),
    ("Tannat", 2018, 7, &["BR", "UY"], 2_000.0),
    ("Junior", 2018, 10, &["BR"], 390.0),
    ("EllaLink", 2021, 6, &["BR"], 9_200.0),
    ("BRUSA", 2018, 9, &["BR"], 11_000.0),
    ("Mistral", 2021, 5, &["CL", "PE", "EC", "GT"], 7_300.0),
    ("Curie", 2020, 4, &["CL", "PA"], 10_500.0),
    ("Prat", 2016, 1, &["CL"], 3_500.0),
    ("FOS Quellon-Chacabuco", 2019, 3, &["CL"], 2_800.0),
    (
        "Asia-South America Digital Gateway",
        2024,
        1,
        &["CL"],
        14_800.0,
    ),
    ("ARBR", 2020, 7, &["AR", "BR"], 2_600.0),
    ("Malbec", 2021, 4, &["AR", "BR"], 2_600.0),
    ("Firmina", 2023, 11, &["BR", "AR", "UY"], 14_500.0),
    ("IBIS-2", 2019, 5, &["BR"], 300.0),
    ("CFX-1", 2008, 9, &["CO"], 2_400.0),
    ("San Andres", 2010, 5, &["CO"], 800.0),
    ("Deep Blue One", 2020, 12, &["CO", "TT"], 2_000.0),
    ("AURORA", 2023, 7, &["CO", "PA"], 2_300.0),
    ("Caribbean Express", 2024, 1, &["PA", "CO", "MX"], 3_500.0),
    ("SPAN", 2015, 4, &["CO", "PA"], 1_200.0),
    ("Pacific Fiber", 2013, 6, &["CL", "PE", "EC"], 4_200.0),
    ("Tannat Extension", 2020, 10, &["AR", "UY"], 400.0),
    ("Atlantis-3", 2018, 3, &["AR", "UY"], 900.0),
    ("Honduras Express", 2009, 7, &["HN"], 450.0),
    ("Belize-1", 2012, 4, &["BZ"], 300.0),
    ("Gulf of California", 2008, 2, &["MX"], 700.0),
    ("Lazaro Cardenas", 2012, 11, &["MX"], 1_100.0),
    ("PAC", 2021, 8, &["PA", "CR"], 900.0),
    ("Antillas-2", 2014, 6, &["DO"], 700.0),
    ("Taino-Carib-2", 2016, 2, &["DO"], 500.0),
    ("CR-1", 2017, 5, &["CR"], 600.0),
    ("Lurin", 2018, 8, &["PE", "EC"], 1_300.0),
    ("GT Pacific", 2015, 11, &["GT", "SV"], 800.0),
    ("SV Conexion", 2019, 9, &["SV", "CR"], 700.0),
];

/// Build the region's cable map with the historical record only.
pub fn build_cable_map() -> CableMap {
    build_cable_map_with(&[])
}

/// Build the region's cable map, applying scenario failure events: each
/// [`CableFailure`](crate::scenario::CableFailure) whose name matches a
/// system marks it out of service from that day. An empty slice is the
/// pure historical record.
pub fn build_cable_map_with(failures: &[crate::scenario::CableFailure]) -> CableMap {
    let mut map = CableMap::new();
    for &(name, y, m, ccs, length) in CABLES {
        let mut landings: Vec<LandingPoint> = ccs
            .iter()
            .map(|cc| {
                let code = CountryCode::of(cc);
                let (city, loc) = coastal_landing(code);
                LandingPoint {
                    city: city.into(),
                    country: code,
                    location: loc,
                }
            })
            .collect();
        // Domestic festoons (one country) still have two landing
        // stations; synthesise the second a little up the coast.
        if landings.len() == 1 {
            let first = landings[0].clone();
            landings.push(LandingPoint {
                city: format!("{} Norte", first.city),
                country: first.country,
                location: GeoPoint::new(
                    first.location.lat_deg() + 1.5,
                    first.location.lon_deg() + 0.5,
                ),
            });
        }
        map.add(Cable {
            name: name.into(),
            rfs: Date::ymd(y, m, 15),
            landings,
            length_km: length,
            failure: failures.iter().find(|f| f.cable == name).map(|f| f.failure),
        })
        .expect("static cable table is valid");
    }
    map
}

/// A representative landing station per country (coastal cities where the
/// capital is inland).
fn coastal_landing(cc: CountryCode) -> (&'static str, GeoPoint) {
    match cc.as_str() {
        "VE" => ("Camuri", GeoPoint::new(10.61, -66.84)),
        "BR" => ("Fortaleza", GeoPoint::new(-3.73, -38.52)),
        "AR" => ("Las Toninas", GeoPoint::new(-36.49, -56.70)),
        "CL" => ("Valparaiso", GeoPoint::new(-33.05, -71.62)),
        "CO" => ("Barranquilla", GeoPoint::new(10.96, -74.80)),
        "MX" => ("Cancun", GeoPoint::new(21.16, -86.85)),
        "PE" => ("Lurin", GeoPoint::new(-12.28, -76.87)),
        "EC" => ("Punta Carnero", GeoPoint::new(-2.25, -80.92)),
        "PA" => ("Colon", GeoPoint::new(9.36, -79.90)),
        "CR" => ("Limon", GeoPoint::new(9.99, -83.03)),
        "GT" => ("Puerto Barrios", GeoPoint::new(15.73, -88.60)),
        "UY" => ("Maldonado", GeoPoint::new(-34.91, -54.96)),
        "CU" => ("Siboney", GeoPoint::new(19.96, -75.70)),
        _ => {
            // Fall back to the capital from the registry.
            let info = country::info(cc).expect("cable lands in a known country");
            (info.capital, info.location)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lacnet_types::MonthStamp;

    #[test]
    fn region_counts_match_fig4() {
        let map = build_cable_map();
        let region: Vec<CountryCode> = country::lacnic_codes().collect();
        let s = map.region_series(&region, MonthStamp::new(2000, 12), MonthStamp::new(2024, 2));
        assert_eq!(
            s.get(MonthStamp::new(2000, 12)),
            Some(13.0),
            "13 cables by 2000"
        );
        assert_eq!(
            s.get(MonthStamp::new(2024, 2)),
            Some(54.0),
            "54 cables by 2024"
        );
    }

    #[test]
    fn venezuela_only_added_alba() {
        let map = build_cable_map();
        let added = map.added_between(country::VE, Date::ymd(2001, 1, 1), Date::ymd(2024, 2, 28));
        assert_eq!(added.len(), 1);
        assert_eq!(added[0].name, "ALBA-1");
        assert!(added[0].lands_in(country::CU), "ALBA connects to Cuba");
        // 4 systems pre-2001, 5 total after ALBA.
        assert_eq!(map.serving(country::VE, Date::ymd(2000, 12, 31)).len(), 4);
        assert_eq!(map.serving(country::VE, Date::ymd(2024, 1, 1)).len(), 5);
    }

    #[test]
    fn quoted_country_trajectories() {
        let map = build_cable_map();
        let count = |cc, y: i32| map.serving(cc, Date::ymd(y, 12, 31)).len();
        assert_eq!(count(country::BR, 2000), 5);
        assert_eq!(count(country::BR, 2023), 17);
        assert_eq!(count(country::CO, 2000), 5);
        assert_eq!(count(country::CO, 2023), 12); // 13 with Caribbean Express (2024-01)
        assert_eq!(map.serving(country::CO, Date::ymd(2024, 2, 1)).len(), 13);
        assert_eq!(count(country::CL, 2000), 2);
        assert_eq!(map.serving(country::CL, Date::ymd(2024, 2, 1)).len(), 9);
        assert_eq!(count(country::AR, 2000), 3);
        assert_eq!(count(country::AR, 2023), 9);
    }

    #[test]
    fn stagnant_countries() {
        let map = build_cable_map();
        let ni = CountryCode::of("NI");
        let ht = CountryCode::of("HT");
        for cc in [ni, ht] {
            assert_eq!(
                map.serving(cc, Date::ymd(2000, 12, 31)).len(),
                map.serving(cc, Date::ymd(2024, 2, 1)).len(),
                "{cc} must not expand"
            );
        }
        // Honduras, Aruba and Belize add exactly one.
        for cc in ["HN", "AW", "BZ"] {
            let cc = CountryCode::of(cc);
            let added = map.added_between(cc, Date::ymd(2001, 1, 1), Date::ymd(2024, 2, 28));
            assert_eq!(added.len(), 1, "{cc} adds exactly one cable");
        }
    }

    #[test]
    fn all_landings_are_in_the_region() {
        let map = build_cable_map();
        for cable in map.cables() {
            assert!(cable.landings.len() >= 2, "{}", cable.name);
            for l in &cable.landings {
                assert!(
                    country::in_lacnic(l.country),
                    "{} lands outside region",
                    cable.name
                );
            }
        }
    }

    #[test]
    fn map_roundtrips_through_json() {
        let map = build_cable_map();
        let back = CableMap::from_json(&map.to_json()).unwrap();
        assert_eq!(back.len(), map.len());
    }
}
