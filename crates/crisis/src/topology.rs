//! The evolving AS-level topology (Figs. 8 and 9, and the routing
//! substrate for address-space visibility).
//!
//! Three ingredients:
//!
//! * a static **global transit cast** — a tier-1 clique plus the regional
//!   wholesalers that reach Venezuela's shores;
//! * **CANTV's scripted transit timeline**, transcribed from Fig. 9 and
//!   §6.1: growth to 11 upstreams by 2013, the US-provider exodus
//!   (Verizon/Sprint/AT&T 2013, GTT 2017, Level3 2018, Telxius and
//!   Arelion in between), the trough of 3 providers around 2020
//!   (Telecom Italia, Columbus, V.tal), and the recent rebound (Orange's
//!   return, Gold Data);
//! * **investment-driven growth** for every other operator: incumbents
//!   add upstreams while their economy invests; enterprises and small
//!   access networks join as CANTV customers from the 2007
//!   nationalisation onward.

use crate::economy::Economy;
use crate::operators::{OperatorKind, Operators};
use lacnet_bgp::{AsGraph, RelEdge, TopologyArchive};
use lacnet_types::{country, Asn, MonthStamp};

/// The tier-1 clique (transit-free, fully peered).
pub const TIER1: &[u32] = &[
    701, 1239, 7018, 3356, 3549, 1299, 3257, 2914, 6453, 6762, 5511,
];

/// Regional wholesale transits and their own (two) tier-1 providers,
/// with the month they entered the market.
const REGIONALS: &[(u32, u32, u32, (i32, u8))] = &[
    (23520, 3356, 7018, (1999, 1)),   // Columbus Networks
    (52320, 6762, 3356, (2009, 1)),   // V.tal / Brasil Telecom (GlobeNet)
    (12956, 6762, 1299, (2001, 1)),   // Telxius
    (28007, 7018, 1299, (2012, 1)),   // Gold Data
    (4436, 3257, 701, (2000, 1)),     // GTT (ex-nLayer)
    (4004, 701, 1239, (1998, 6)),     // legacy US wholesale
    (7927, 7018, 1239, (1998, 1)),    // early LatAm wholesale
    (19962, 3356, 1299, (2003, 1)),   // regional carrier
    (262589, 52320, 6762, (2013, 1)), // LACNIC-region wholesale
];

/// CANTV's transit providers as `(asn, start, end)` intervals (end
/// exclusive; `None` = still serving). Transcribed from Fig. 9.
#[allow(clippy::type_complexity)]
pub const CANTV_TRANSIT_INTERVALS: &[(u32, (i32, u8), Option<(i32, u8)>)] = &[
    (701, (1998, 1), Some((2013, 7))),   // Verizon leaves 2013
    (1239, (1999, 3), Some((2013, 5))),  // Sprint leaves 2013
    (7018, (1998, 6), Some((2013, 10))), // AT&T leaves 2013
    (3356, (2001, 5), Some((2018, 3))),  // Level3 leaves 2018
    (3549, (2003, 8), Some((2018, 3))),  // Level3/GBLX leaves 2018
    (1299, (2005, 4), Some((2015, 9))),  // Arelion stops serving
    (3257, (2006, 9), Some((2017, 4))),  // GTT leaves 2017
    (4436, (2013, 10), Some((2017, 4))), // GTT's second ASN
    (6762, (2002, 2), None),             // Telecom Italia — longstanding
    (23520, (2007, 1), None),            // Columbus — sole US survivor
    (12956, (2009, 2), Some((2016, 6))), // Telxius stops serving
    (4004, (2011, 11), Some((2014, 7))),
    (7927, (1998, 1), Some((2004, 1))),
    (19962, (2004, 6), Some((2009, 1))),
    (5511, (2008, 3), Some((2011, 7))), // Orange, first stint
    (5511, (2021, 3), None),            // Orange returns (§6.1)
    (262589, (2013, 5), Some((2016, 3))),
    (52320, (2019, 6), None), // V.tal via GlobeNet
    (28007, (2022, 4), None), // Gold Data — recent addition
];

/// Founding month of each Venezuelan Table-1 operator (Telefónica began
/// operations in 2005 per §4; 4-byte-ASN entrants are post-2010).
pub fn ve_founding_month(asn: Asn) -> MonthStamp {
    match asn.raw() {
        8048 => MonthStamp::new(1996, 1),
        21826 => MonthStamp::new(2001, 6),  // Telemic / Inter
        6306 => MonthStamp::new(2005, 3),   // Telefónica de Venezuela
        11562 => MonthStamp::new(1999, 9),  // NetUno
        27889 => MonthStamp::new(2002, 1),  // Movilnet
        264731 => MonthStamp::new(2011, 5), // Digitel
        264628 => MonthStamp::new(2014, 8), // Fibex
        263703 => MonthStamp::new(2015, 2), // Viginet
        61461 => MonthStamp::new(2016, 4),  // Airtek
        272809 => MonthStamp::new(2018, 9), // Thundernet
        a if (275_000..276_000).contains(&a) => {
            // Small access networks appear from 2016 on.
            MonthStamp::new(2016, 1).plus(((a - 275_000) * 5) as i32 % 84)
        }
        a if (276_500..277_000).contains(&a) => {
            // Enterprises joined CANTV after the 2007 nationalisation.
            MonthStamp::new(2007, 6).plus(((a - 276_500) * 7) as i32 % 150)
        }
        _ => MonthStamp::new(2000, 1),
    }
}

/// Non-Venezuelan ISP founding: incumbents are old; ISP k enters around
/// 2000 + 2k years.
fn founding(op_kind: OperatorKind, asn: Asn, ve: bool) -> MonthStamp {
    if ve {
        return ve_founding_month(asn);
    }
    match op_kind {
        OperatorKind::Incumbent => MonthStamp::new(1998, 1),
        OperatorKind::Mobile => MonthStamp::new(2000, 6),
        OperatorKind::Isp => MonthStamp::new(2002, 1).plus((asn.raw() % 8) as i32 * 24),
        OperatorKind::Enterprise => MonthStamp::new(2008, 1),
    }
}

/// Builds the monthly topology archive.
pub struct TopologyBuilder<'a> {
    ops: &'a Operators,
    economy: &'a Economy,
    scenario: Option<&'a crate::scenario::Scenario>,
}

impl<'a> TopologyBuilder<'a> {
    /// Create a builder over the cast and economy, under the default
    /// (Venezuela) scenario.
    pub fn new(ops: &'a Operators, economy: &'a Economy) -> Self {
        TopologyBuilder {
            ops,
            economy,
            scenario: None,
        }
    }

    /// Apply a scenario's transit withdrawals: a `[[transit_withdrawals]]`
    /// entry caps every matching CANTV provider interval at the given
    /// month (a withdrawn provider does not return). A scenario with no
    /// withdrawals builds the historical archive exactly.
    pub fn with_scenario(mut self, scenario: &'a crate::scenario::Scenario) -> Self {
        self.scenario = Some(scenario);
        self
    }

    /// The collector set used for visibility decisions: the tier-1 clique.
    pub fn collectors() -> Vec<Asn> {
        TIER1.iter().map(|&a| Asn(a)).collect()
    }

    /// Build the archive over `[start, end]`, one snapshot per month.
    pub fn build(&self, start: MonthStamp, end: MonthStamp) -> TopologyArchive {
        let mut archive = TopologyArchive::new();
        for m in start.through(end) {
            archive.insert(m, self.snapshot(m));
        }
        archive
    }

    /// One monthly snapshot.
    pub fn snapshot(&self, m: MonthStamp) -> AsGraph {
        let mut edges: Vec<RelEdge> = Vec::new();

        // Tier-1 clique.
        for (i, &a) in TIER1.iter().enumerate() {
            for &b in TIER1.iter().skip(i + 1) {
                edges.push(RelEdge::peering(Asn(a), Asn(b)));
            }
        }
        // Regional wholesalers.
        for &(asn, p1, p2, (y, mo)) in REGIONALS {
            if m >= MonthStamp::new(y, mo) {
                edges.push(RelEdge::transit(Asn(p1), Asn(asn)));
                edges.push(RelEdge::transit(Asn(p2), Asn(asn)));
            }
        }
        // CANTV's scripted providers. A scenario withdrawal caps the
        // interval: the provider leaves at the withdrawal month if that
        // is earlier than (or replaces) the scripted departure.
        for &(prov, (sy, sm), until) in CANTV_TRANSIT_INTERVALS {
            let mut until = until.map(|(ey, em)| MonthStamp::new(ey, em));
            if let Some(w) = self.scenario.and_then(|s| s.withdrawal_end(Asn(prov))) {
                until = Some(until.map_or(w, |u| u.min(w)));
            }
            let active = m >= MonthStamp::new(sy, sm) && until.is_none_or(|e| m < e);
            if active {
                edges.push(RelEdge::transit(Asn(prov), Asn(8048)));
            }
        }

        // Venezuelan non-incumbent operators.
        for op in self.ops.in_country(country::VE) {
            if op.asn == Asn(8048) || m < founding(op.kind, op.asn, true) {
                continue;
            }
            match op.kind {
                OperatorKind::Enterprise => {
                    // Banks and universities single-home behind CANTV.
                    edges.push(RelEdge::transit(Asn(8048), op.asn));
                }
                _ => {
                    // Access networks reach the world through the
                    // wholesalers with submarine capacity to Venezuela,
                    // never through CANTV (§7.2's observation), except a
                    // handful of small networks that did sign with the
                    // incumbent.
                    let menu: &[u32] = &[23520, 6762, 52320, 28007, 12956];
                    let h = op.asn.raw() as usize;
                    let first = menu[h % menu.len()];
                    if (m >= MonthStamp::new(2009, 1).plus((h % 36) as i32)
                        || op.asn.raw() < 100_000)
                        && self.active_regional(first, m)
                    {
                        edges.push(RelEdge::transit(Asn(first), op.asn));
                    }
                    // Multihome the bigger ISPs.
                    if op.users > 1_000_000 {
                        let second = menu[(h / 7) % menu.len()];
                        if second != first && self.active_regional(second, m) {
                            edges.push(RelEdge::transit(Asn(second), op.asn));
                        }
                    }
                    // A few small networks buy from CANTV domestically.
                    if op.users > 0
                        && op.users < 600_000
                        && h.is_multiple_of(3)
                        && m >= MonthStamp::new(2014, 1)
                    {
                        edges.push(RelEdge::transit(Asn(8048), op.asn));
                    }
                }
            }
        }

        // The rest of the region: incumbents buy from tier-1s, growing
        // with investment; ISPs buy from their incumbent plus sometimes a
        // wholesaler.
        for info in country::LACNIC_REGION {
            if info.code == country::VE {
                continue;
            }
            let Some(incumbent) = self.ops.incumbent(info.code) else {
                continue;
            };
            let inv = self.economy.investment_index(info.code, m);
            // Upstream count: 2 at founding, +1 per 6 years of healthy
            // investment, capped by the tier-1 pool.
            let years = m.years_since(MonthStamp::new(1998, 1)).max(0.0);
            let n_up = (2.0 + years / 6.0 * inv).floor() as usize;
            let n_up = n_up.clamp(2, TIER1.len());
            let h = incumbent.asn.raw() as usize;
            for k in 0..n_up {
                let prov = TIER1[(h + k * 3) % TIER1.len()];
                edges.push(RelEdge::transit(Asn(prov), incumbent.asn));
            }
            for op in self.ops.in_country(info.code) {
                if op.asn == incumbent.asn || m < founding(op.kind, op.asn, false) {
                    continue;
                }
                edges.push(RelEdge::transit(incumbent.asn, op.asn));
                if op.users > 2_000_000 {
                    let prov = REGIONALS[(op.asn.raw() as usize) % REGIONALS.len()].0;
                    if self.active_regional(prov, m) {
                        edges.push(RelEdge::transit(Asn(prov), op.asn));
                    }
                }
            }
        }

        AsGraph::from_edges(edges)
    }

    fn active_regional(&self, asn: u32, m: MonthStamp) -> bool {
        // Tier-1s (Telecom Italia appears in the wholesale menu) are
        // always in the market; regional wholesalers from their founding.
        if TIER1.contains(&asn) {
            return true;
        }
        REGIONALS
            .iter()
            .find(|&&(a, ..)| a == asn)
            .map(|&(_, _, _, (y, mo))| m >= MonthStamp::new(y, mo))
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::Operators;
    use lacnet_bgp::analytics;

    fn world() -> (Operators, Economy) {
        (
            Operators::generate(42),
            Economy::generate(MonthStamp::new(1980, 1), MonthStamp::new(2024, 2)),
        )
    }

    #[test]
    fn fig8_upstream_trajectory() {
        let (ops, eco) = world();
        let builder = TopologyBuilder::new(&ops, &eco);
        let archive = builder.build(MonthStamp::new(1998, 1), MonthStamp::new(2024, 2));
        let up = analytics::upstream_series(&archive, Asn(8048));
        // Peak of 11 upstream providers around 2013 (§6.1).
        let peak = up.max_value().unwrap();
        assert!((10.0..=12.0).contains(&peak), "peak {peak}");
        let at_2013 = up.get(MonthStamp::new(2013, 1)).unwrap();
        assert!((10.0..=12.0).contains(&at_2013), "2013 {at_2013}");
        // Decline to 3 by 2020.
        let at_2020 = up.get(MonthStamp::new(2020, 6)).unwrap();
        assert_eq!(at_2020, 3.0, "2020 trough");
        // Recent rebound to ≥ 5.
        let last = up.last().unwrap().1;
        assert!(last >= 5.0, "rebound {last}");
    }

    #[test]
    fn fig9_departures_match_the_narrative() {
        let (ops, eco) = world();
        let builder = TopologyBuilder::new(&ops, &eco);
        let archive = builder.build(MonthStamp::new(1998, 1), MonthStamp::new(2024, 2));
        let gone: std::collections::BTreeMap<Asn, MonthStamp> =
            analytics::departed_providers(&archive, Asn(8048))
                .into_iter()
                .collect();
        // Verizon, Sprint, AT&T leave during 2013.
        assert_eq!(gone[&Asn(701)].year(), 2013);
        assert_eq!(gone[&Asn(1239)].year(), 2013);
        assert_eq!(gone[&Asn(7018)].year(), 2013);
        // GTT in 2017, Level3 in 2018.
        assert_eq!(gone[&Asn(3257)].year(), 2017);
        assert_eq!(gone[&Asn(3356)].year(), 2018);
        // Survivors are not in the departed set.
        assert!(!gone.contains_key(&Asn(6762)));
        assert!(!gone.contains_key(&Asn(23520)));
        assert!(!gone.contains_key(&Asn(52320)));
    }

    #[test]
    fn fig9_roster_served_at_least_12_months() {
        let (ops, eco) = world();
        let builder = TopologyBuilder::new(&ops, &eco);
        let archive = builder.build(MonthStamp::new(1998, 1), MonthStamp::new(2024, 2));
        let pp = analytics::ProviderPresence::compute(&archive, Asn(8048), 12);
        // The Fig. 9 heatmap lists 18 providers.
        assert_eq!(pp.providers.len(), 18, "{:?}", pp.providers);
        // Columbus is the sole remaining US-registered provider.
        assert!(pp.providers.contains(&Asn(23520)));
    }

    #[test]
    fn cantv_downstreams_grow_after_nationalisation() {
        let (ops, eco) = world();
        let builder = TopologyBuilder::new(&ops, &eco);
        let archive = builder.build(MonthStamp::new(2000, 1), MonthStamp::new(2024, 2));
        let down = analytics::downstream_series(&archive, Asn(8048));
        let at_2006 = down.get(MonthStamp::new(2006, 1)).unwrap();
        let at_2024 = down.get(MonthStamp::new(2024, 1)).unwrap();
        assert!(at_2006 <= 2.0, "pre-nationalisation {at_2006}");
        assert!(at_2024 >= 15.0, "accumulated customers {at_2024}");
        // Monotone-ish growth: the 2015 count is between.
        let at_2015 = down.get(MonthStamp::new(2015, 1)).unwrap();
        assert!(at_2015 > at_2006 && at_2015 < at_2024);
    }

    #[test]
    fn valley_free_world_is_routable() {
        use lacnet_bgp::propagation::RouteSim;
        let (ops, eco) = world();
        let builder = TopologyBuilder::new(&ops, &eco);
        let g = builder.snapshot(MonthStamp::new(2020, 6));
        // Every eyeball AS in the region reaches all tier-1 collectors.
        let sim = RouteSim::new(&g);
        let collectors = TopologyBuilder::collectors();
        for cc in [country::VE, country::BR, country::CL] {
            for op in ops.eyeballs(cc).iter().take(3) {
                if !g.contains(op.asn) {
                    continue;
                }
                let out = sim.propagate(op.asn);
                let vis = out.visibility(&collectors);
                assert!(vis > 0.99, "{} AS{} visibility {vis}", cc, op.asn.raw());
            }
        }
    }

    #[test]
    fn tier1s_are_transit_free() {
        let (ops, eco) = world();
        let builder = TopologyBuilder::new(&ops, &eco);
        let g = builder.snapshot(MonthStamp::new(2020, 6));
        for &t in TIER1 {
            assert_eq!(g.upstream_count(Asn(t)), 0, "AS{t} has providers");
        }
    }

    #[test]
    fn telefonica_served_by_telxius() {
        let (ops, eco) = world();
        let builder = TopologyBuilder::new(&ops, &eco);
        let g = builder.snapshot(MonthStamp::new(2012, 1));
        // Telefónica de Venezuela multihomes through the wholesale menu
        // (it is a >1M-user eyeball), never through CANTV.
        let provs = g.providers(Asn(6306));
        assert!(!provs.is_empty());
        assert!(!provs.contains(&Asn(8048)));
    }
}
