//! Hypergiant off-net deployments (Fig. 7, Fig. 18, Appendix G): the
//! yearly TLS-certificate scans the detection method consumes.
//!
//! The deployment story per §5.5:
//!
//! * **Google and Akamai** established Venezuelan off-nets *before* the
//!   crisis (including inside CANTV) and froze afterwards — Venezuela's
//!   mean coverage lands near the paper's 56.9% (Google) and 35.7%
//!   (Akamai);
//! * **Facebook and Netflix** expanded across the region from ≈2014 but
//!   were modest and late in Venezuela: Facebook never entered CANTV,
//!   Netflix only in 2021 (mean coverage ≈28% and ≈6%);
//! * the remaining six hypergiants keep minimal LACNIC off-nets and none
//!   in Venezuela.

use crate::operators::{Operator, OperatorKind, Operators};
use lacnet_offnets::certs::{CertScan, ScanRecord, TlsCert};
use lacnet_offnets::hypergiants::{by_name, Hypergiant};
use lacnet_types::{country, MonthStamp};

/// First (January) scan year in the Gigis et al. artifacts.
pub const FIRST_SCAN_YEAR: i32 = 2013;
/// Last scan year.
pub const LAST_SCAN_YEAR: i32 = 2021;

/// Venezuela's explicit adoption script `(hypergiant, asn, year)`.
const VE_ADOPTIONS: &[(&str, u32, i32)] = &[
    // Google: pre-crisis footprint, plus the later entrants' builds.
    ("Google", 8048, 2011),
    ("Google", 21826, 2012),
    ("Google", 6306, 2012),
    ("Google", 11562, 2012),
    ("Google", 263703, 2016),
    // Akamai: CANTV and Telemic only, both pre-crisis.
    ("Akamai", 8048, 2011),
    ("Akamai", 21826, 2012),
    // Facebook: never in CANTV; mid-decade entries elsewhere.
    ("Facebook", 21826, 2015),
    ("Facebook", 6306, 2015),
    ("Facebook", 264731, 2017),
    ("Facebook", 11562, 2017),
    ("Facebook", 264628, 2019),
    // Netflix: Telemic in 2019, CANTV only in 2021.
    ("Netflix", 21826, 2019),
    ("Netflix", 8048, 2021),
];

/// A representative certificate name for each hypergiant.
fn cert_name(hg: &Hypergiant) -> String {
    let pat = hg.cert_patterns[0];
    match pat.strip_prefix("*.") {
        Some(suffix) => format!("edge-cache-1.{suffix}"),
        None => pat.to_owned(),
    }
}

fn hash2(a: &str, b: u32) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for byte in a.bytes().chain(b.to_le_bytes()) {
        h ^= byte as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// The year `op` first hosts `hg`'s off-net, if ever.
pub fn adoption_year(hg: &Hypergiant, op: &Operator) -> Option<i32> {
    if op.users == 0 {
        return None;
    }
    if op.country == country::VE {
        return VE_ADOPTIONS
            .iter()
            .find(|&&(name, asn, _)| name == hg.name && asn == op.asn.raw())
            .map(|&(_, _, y)| y);
    }
    // Rest of the region: staggered rollouts for big eyeballs.
    let h = hash2(hg.name, op.asn.raw());
    let big = op.users > 400_000;
    match hg.name {
        "Google" if big => Some(2009 + (h % 5) as i32),
        "Akamai" if big => Some(2010 + (h % 5) as i32),
        "Facebook" if big => Some(2014 + (h % 4) as i32),
        "Netflix" if big => Some(2013 + (h % 4) as i32),
        // Minimal presence: a few Brazilian and Mexican organisations.
        "Microsoft" | "Amazon" | "Cloudflare"
            if matches!(op.country.as_str(), "BR" | "MX") && op.kind == OperatorKind::Incumbent =>
        {
            Some(2018)
        }
        "Limelight" | "Cdnetworks" | "Alibaba"
            if op.country == country::BR && op.kind == OperatorKind::Incumbent =>
        {
            Some(2019)
        }
        _ => None,
    }
}

/// Build the yearly scan series.
pub fn build_cert_scans(ops: &Operators) -> Vec<CertScan> {
    (FIRST_SCAN_YEAR..=LAST_SCAN_YEAR)
        .map(|year| {
            let mut scan = CertScan::new(MonthStamp::new(year, 1));
            for op in ops.all() {
                for hg in lacnet_offnets::HYPERGIANTS {
                    if adoption_year(hg, op).is_some_and(|y| y <= year) {
                        scan.push(ScanRecord {
                            asn: op.asn,
                            country: op.country,
                            cert: TlsCert {
                                subject_cn: cert_name(hg),
                                dns_names: vec![hg.cert_patterns[0].to_owned()],
                            },
                        });
                    }
                }
                // Background noise: every eyeball serves an unrelated
                // first-party certificate too.
                if op.users > 0 {
                    scan.push(ScanRecord {
                        asn: op.asn,
                        country: op.country,
                        cert: TlsCert {
                            subject_cn: format!("www.as{}.example", op.asn.raw()),
                            dns_names: vec![],
                        },
                    });
                }
            }
            // Hypergiants also serve from their own networks (must not be
            // counted as off-nets).
            for hg in lacnet_offnets::HYPERGIANTS {
                scan.push(ScanRecord {
                    asn: hg.own_asns[0],
                    country: country::US,
                    cert: TlsCert {
                        subject_cn: cert_name(hg),
                        dns_names: vec![],
                    },
                });
            }
            scan
        })
        .collect()
}

/// Convenience: Venezuela's mean coverage for one hypergiant across all
/// scans (the §5.5 ranking metric).
pub fn ve_mean_coverage(ops: &Operators, scans: &[CertScan], hg_name: &str) -> f64 {
    let hg = by_name(hg_name).expect("known hypergiant");
    let series = lacnet_offnets::detect::coverage_series(
        scans,
        hg,
        country::VE,
        ops.populations(),
        ops.as2org(),
    );
    series.mean().unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lacnet_offnets::detect::{self, detect_offnets};
    use lacnet_types::Asn;

    fn world() -> (Operators, Vec<CertScan>) {
        let ops = Operators::generate(42);
        let scans = build_cert_scans(&ops);
        (ops, scans)
    }

    #[test]
    fn nine_yearly_scans() {
        let (_, scans) = world();
        assert_eq!(scans.len(), 9);
        assert_eq!(scans[0].month, MonthStamp::new(2013, 1));
        assert_eq!(scans[8].month, MonthStamp::new(2021, 1));
        assert!(scans.iter().all(|s| !s.is_empty()));
    }

    #[test]
    fn fig7_ve_mean_coverages() {
        let (ops, scans) = world();
        // Paper: Google 56.88%, Akamai 35.74%, Facebook 28.33%, Netflix 5.87%.
        let google = ve_mean_coverage(&ops, &scans, "Google");
        assert!((48.0..=65.0).contains(&google), "Google {google}");
        let akamai = ve_mean_coverage(&ops, &scans, "Akamai");
        assert!((30.0..=42.0).contains(&akamai), "Akamai {akamai}");
        let facebook = ve_mean_coverage(&ops, &scans, "Facebook");
        assert!((20.0..=36.0).contains(&facebook), "Facebook {facebook}");
        let netflix = ve_mean_coverage(&ops, &scans, "Netflix");
        assert!((3.0..=10.0).contains(&netflix), "Netflix {netflix}");
    }

    #[test]
    fn cantv_story() {
        let (_, scans) = world();
        let scan_2015 = &scans[2];
        let scan_2021 = &scans[8];
        // Google and Akamai were in CANTV before the crisis.
        for name in ["Google", "Akamai"] {
            let hosts = detect_offnets(scan_2015, by_name(name).unwrap());
            assert!(hosts.hosts.contains(&Asn(8048)), "{name} in CANTV by 2015");
        }
        // Facebook never entered CANTV.
        for scan in &scans {
            let hosts = detect_offnets(scan, by_name("Facebook").unwrap());
            assert!(
                !hosts.hosts.contains(&Asn(8048)),
                "Facebook must not be in CANTV"
            );
        }
        // Netflix only in 2021.
        let netflix = by_name("Netflix").unwrap();
        assert!(
            !detect_offnets(&scans[7], netflix)
                .hosts
                .contains(&Asn(8048)),
            "not in 2020"
        );
        assert!(
            detect_offnets(scan_2021, netflix)
                .hosts
                .contains(&Asn(8048)),
            "in 2021"
        );
    }

    #[test]
    fn minor_hypergiants_absent_from_venezuela() {
        let (_, scans) = world();
        for name in [
            "Microsoft",
            "Limelight",
            "Cdnetworks",
            "Alibaba",
            "Amazon",
            "Cloudflare",
        ] {
            let hg = by_name(name).unwrap();
            for scan in &scans {
                let hosts = detect_offnets(scan, hg);
                for asn in &hosts.hosts {
                    let rec = scan.records.iter().find(|r| r.asn == *asn).unwrap();
                    assert_ne!(rec.country, country::VE, "{name} must have no VE off-nets");
                }
            }
        }
    }

    #[test]
    fn ve_ranks_low_for_late_hypergiants() {
        let (ops, scans) = world();
        let countries: Vec<_> = country::lacnic_codes().collect();
        for (name, min_rank_frac) in [("Netflix", 0.6), ("Facebook", 0.5)] {
            let hg = by_name(name).unwrap();
            let ranking = detect::mean_coverage_ranking(
                &scans,
                hg,
                &countries,
                ops.populations(),
                ops.as2org(),
            );
            let rank = detect::rank_of(&ranking, country::VE).unwrap();
            let frac = rank as f64 / ranking.len() as f64;
            assert!(
                frac >= min_rank_frac,
                "{name}: VE rank {rank}/{} ",
                ranking.len()
            );
        }
    }

    #[test]
    fn healthy_countries_reach_high_google_coverage() {
        let (ops, scans) = world();
        let google = by_name("Google").unwrap();
        let hosts = detect_offnets(&scans[8], google);
        for cc in [country::BR, country::AR, country::CL] {
            let cov = detect::population_coverage(&hosts, cc, ops.populations(), ops.as2org());
            assert!(cov > 60.0, "{cc} Google coverage {cov}");
        }
    }

    #[test]
    fn own_networks_never_detected() {
        let (_, scans) = world();
        for hg in lacnet_offnets::HYPERGIANTS {
            for scan in &scans {
                let hosts = detect_offnets(scan, hg);
                for own in hg.own_asns {
                    assert!(!hosts.hosts.contains(own));
                }
            }
        }
    }
}
