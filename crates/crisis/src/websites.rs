//! Top-site scrapes and third-party adoption (Fig. 19 / Appendix H).
//!
//! Fig. 19 covers nine countries. Per-country adoption probabilities are
//! set so both the *values* the paper quotes (Venezuela: DNS 0.29,
//! HTTPS 0.58, CA 0.22, CDN 0.37; regional means 0.32/0.60/0.26/0.46)
//! and the *bar orderings* of all four panels reproduce. Each country's
//! list mixes globally shared sites (which the unique-site filter must
//! drop) with domestic sites sampled from those probabilities.

use lacnet_types::rng::Rng;
use lacnet_types::{CountryCode, MonthStamp};
use lacnet_webmeas::scrape::{CountryTopSites, Provider, SiteObservation};

/// `(country, p_dns, p_https, p_ca, p_cdn)` — the marginal adoption
/// probabilities of a domestic site.
const ADOPTION: &[(&str, f64, f64, f64, f64)] = &[
    ("BO", 0.20, 0.45, 0.12, 0.25),
    ("VE", 0.29, 0.58, 0.22, 0.37),
    ("AR", 0.30, 0.50, 0.26, 0.50),
    ("PY", 0.31, 0.59, 0.24, 0.30),
    ("BR", 0.33, 0.72, 0.30, 0.55),
    ("CL", 0.36, 0.68, 0.28, 0.62),
    ("CO", 0.37, 0.55, 0.33, 0.40),
    ("MX", 0.38, 0.63, 0.35, 0.48),
    ("UY", 0.40, 0.65, 0.25, 0.45),
];

/// Sites shared by every country's top list (filtered out by the
/// unique-sites step, as in the paper's methodology).
const GLOBAL_SITES: &[&str] = &[
    "google.com",
    "youtube.com",
    "facebook.com",
    "whatsapp.com",
    "instagram.com",
    "wikipedia.org",
    "twitter.com",
    "netflix.com",
    "tiktok.com",
    "amazon.com",
    "live.com",
    "bing.com",
    "yahoo.com",
    "telegram.org",
    "linkedin.com",
];

/// Number of domestic (unique) sites per country list.
const DOMESTIC_SITES: usize = 700;

/// The countries Fig. 19 covers.
pub fn fig19_countries() -> Vec<CountryCode> {
    ADOPTION
        .iter()
        .map(|&(cc, ..)| CountryCode::of(cc))
        .collect()
}

/// The scrape month (the paper's snapshot is January 2024).
pub fn scrape_month() -> MonthStamp {
    MonthStamp::new(2024, 1)
}

/// Generate the per-country top-site lists (shared + domestic).
pub fn build_top_sites(seed: u64) -> Vec<CountryTopSites> {
    let root = Rng::seeded(seed);
    ADOPTION
        .iter()
        .map(|&(cc, p_dns, p_https, p_ca, p_cdn)| {
            let code = CountryCode::of(cc);
            let mut rng = root.fork(&format!("websites/{cc}"));
            let mut sites = Vec::with_capacity(GLOBAL_SITES.len() + DOMESTIC_SITES);
            // Shared heads of every list: big third-party everything.
            for d in GLOBAL_SITES {
                sites.push(SiteObservation {
                    domain: (*d).to_owned(),
                    https: true,
                    dns_provider: Provider::third_party("SelfDNS-Global"),
                    ca: Provider::third_party("DigiCert"),
                    cdn: Some(Provider::third_party("Global CDN")),
                });
            }
            // Domestic tail: unique domains sampled from the country's
            // adoption profile.
            for i in 0..DOMESTIC_SITES {
                let https = rng.chance(p_https);
                // CA adoption is conditional on HTTPS so the *marginal*
                // matches p_ca.
                let ca3p = https && rng.chance(p_ca / p_https);
                sites.push(SiteObservation {
                    domain: format!("sitio-{}-{:03}.{}", cc.to_lowercase(), i, tld(cc)),
                    https,
                    dns_provider: if rng.chance(p_dns) {
                        Provider::third_party("Cloudflare DNS")
                    } else {
                        Provider::self_hosted()
                    },
                    ca: if ca3p {
                        Provider::third_party("Lets Encrypt")
                    } else {
                        Provider::self_hosted()
                    },
                    cdn: rng
                        .chance(p_cdn)
                        .then(|| Provider::third_party("Cloudflare")),
                });
            }
            CountryTopSites {
                country: code,
                sites,
            }
        })
        .collect()
}

fn tld(cc: &str) -> &'static str {
    match cc {
        "VE" => "com.ve",
        "AR" => "com.ar",
        "BR" => "com.br",
        "CL" => "cl",
        "CO" => "com.co",
        "MX" => "com.mx",
        "UY" => "com.uy",
        "PY" => "com.py",
        "BO" => "com.bo",
        _ => "lat",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lacnet_types::country;
    use lacnet_webmeas::scrape::unique_sites;
    use lacnet_webmeas::thirdparty::{AdoptionReport, ServiceKind};

    fn report() -> AdoptionReport {
        let lists = build_top_sites(42);
        let unique = unique_sites(&lists);
        AdoptionReport::compute(&unique)
    }

    #[test]
    fn unique_filter_removes_global_heads() {
        let lists = build_top_sites(42);
        let unique = unique_sites(&lists);
        for list in &unique {
            assert_eq!(list.sites.len(), DOMESTIC_SITES, "{}", list.country);
            assert!(list
                .sites
                .iter()
                .all(|s| !GLOBAL_SITES.contains(&s.domain.as_str())));
        }
    }

    #[test]
    fn fig19_ve_values() {
        let r = report();
        let ve = |k| r.get(country::VE, k).unwrap();
        assert!(
            (ve(ServiceKind::Dns) - 0.29).abs() < 0.05,
            "DNS {}",
            ve(ServiceKind::Dns)
        );
        assert!(
            (ve(ServiceKind::Https) - 0.58).abs() < 0.05,
            "HTTPS {}",
            ve(ServiceKind::Https)
        );
        assert!(
            (ve(ServiceKind::Ca) - 0.22).abs() < 0.05,
            "CA {}",
            ve(ServiceKind::Ca)
        );
        assert!(
            (ve(ServiceKind::Cdn) - 0.37).abs() < 0.05,
            "CDN {}",
            ve(ServiceKind::Cdn)
        );
    }

    #[test]
    fn fig19_regional_means() {
        let r = report();
        let mean = |k| r.regional_mean(k).unwrap();
        assert!(
            (mean(ServiceKind::Dns) - 0.32).abs() < 0.04,
            "DNS {}",
            mean(ServiceKind::Dns)
        );
        assert!(
            (mean(ServiceKind::Https) - 0.60).abs() < 0.04,
            "HTTPS {}",
            mean(ServiceKind::Https)
        );
        assert!(
            (mean(ServiceKind::Ca) - 0.26).abs() < 0.04,
            "CA {}",
            mean(ServiceKind::Ca)
        );
        assert!(
            (mean(ServiceKind::Cdn) - 0.46).abs() < 0.06,
            "CDN {}",
            mean(ServiceKind::Cdn)
        );
    }

    #[test]
    fn fig19_venezuela_near_bottom_except_https() {
        let r = report();
        for kind in [ServiceKind::Dns, ServiceKind::Ca, ServiceKind::Cdn] {
            let ranking = r.ranking(kind);
            let pos = ranking
                .iter()
                .position(|&(cc, _)| cc == country::VE)
                .unwrap();
            // Sampling noise can swap adjacent bars (the VE–CO CDN gap
            // is 0.03); the claim is "near the bottom", not an exact slot.
            assert!(pos <= 3, "{kind:?}: VE at position {pos}");
            assert_eq!(
                ranking[0].0,
                CountryCode::of("BO"),
                "{kind:?}: Bolivia lowest"
            );
        }
        // HTTPS: VE sits mid-pack, slightly below the mean but above AR/CO.
        let https = r.ranking(ServiceKind::Https);
        let pos = https.iter().position(|&(cc, _)| cc == country::VE).unwrap();
        assert!((2..=5).contains(&pos), "HTTPS position {pos}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = build_top_sites(7);
        let b = build_top_sites(7);
        assert_eq!(a, b);
        let c = build_top_sites(8);
        assert_ne!(a, c);
    }

    #[test]
    fn scrape_metadata() {
        assert_eq!(fig19_countries().len(), 9);
        assert_eq!(scrape_month(), MonthStamp::new(2024, 1));
    }
}
