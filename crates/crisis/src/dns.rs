//! The DNS world: Atlas probes (Fig. 17), root-server deployments
//! (Figs. 6 and 16), and the Google Public DNS site rollout (Figs. 12
//! and 20).
//!
//! Calibration:
//!
//! * detected root replicas in the region grow 59 → 138 between 2016 and
//!   2024, with Brazil 18→41, Mexico 4→16, Chile 5→20, Argentina 14→15;
//! * Venezuela's regression is scripted verbatim: an L node
//!   (`ccs01.l.root-servers.org`) and an F node
//!   (`ccs1a.f.root-servers.org`) in Caracas disappear, a Maracaibo L
//!   node (`aa.ve-mai.l.root`) appears in 2019 and is gone by 2021;
//! * Venezuela keeps 10 probes in 2016 growing to 30 (6th in the
//!   region), of which CANTV hosts only 8;
//! * Caracas traffic egresses through Miami (so GPDNS RTT stays in the
//!   mid-30s), while border probes on small access networks reach the
//!   Bogotá site directly at < 20 ms once it exists.

use lacnet_atlas::{GpdnsSite, Probe, ProbeRegistry, RootDeployment, RootInstance, RootLetter};
use lacnet_types::rng::Rng;
use lacnet_types::{country, geo, Asn, CountryCode, GeoPoint, MonthStamp};

/// A measurement city: site code (for instance identities), coordinates,
/// and whether it is the country's primary city.
#[derive(Debug, Clone, Copy)]
struct City {
    code: &'static str,
    lat: f64,
    lon: f64,
}

/// Probe/instance cities per country. The first city is the capital; the
/// instance grid and probe placement both draw from this list, which is
/// what makes every scheduled instance detectable by the campaign.
fn cities(cc: CountryCode) -> Vec<City> {
    match cc.as_str() {
        "VE" => vec![
            City {
                code: "ccs",
                lat: 10.48,
                lon: -66.90,
            },
            City {
                code: "mar",
                lat: 10.65,
                lon: -71.61,
            },
            // San Cristóbal, on the Colombian border (Appendix J).
            City {
                code: "sci",
                lat: 7.77,
                lon: -72.22,
            },
        ],
        "BR" => vec![
            City {
                code: "gru",
                lat: -23.55,
                lon: -46.63,
            },
            City {
                code: "gig",
                lat: -22.91,
                lon: -43.17,
            },
            City {
                code: "bsb",
                lat: -15.79,
                lon: -47.88,
            },
            City {
                code: "for",
                lat: -3.73,
                lon: -38.52,
            },
        ],
        "AR" => vec![
            City {
                code: "eze",
                lat: -34.60,
                lon: -58.38,
            },
            City {
                code: "cor",
                lat: -31.42,
                lon: -64.18,
            },
        ],
        "CL" => vec![
            City {
                code: "scl",
                lat: -33.45,
                lon: -70.67,
            },
            City {
                code: "ccp",
                lat: -36.83,
                lon: -73.05,
            },
        ],
        "MX" => vec![
            City {
                code: "mex",
                lat: 19.43,
                lon: -99.13,
            },
            City {
                code: "gdl",
                lat: 20.67,
                lon: -103.35,
            },
            City {
                code: "mty",
                lat: 25.67,
                lon: -100.31,
            },
        ],
        "CO" => vec![
            City {
                code: "bog",
                lat: 4.71,
                lon: -74.07,
            },
            City {
                code: "mde",
                lat: 6.25,
                lon: -75.56,
            },
        ],
        other => {
            // Single-city countries use their capital's IATA code, which
            // is present in the airport registry so decoded identities
            // geolocate.
            let code = match other {
                "BO" => "lpb",
                "BQ" => "bon",
                "CR" => "sjo",
                "CU" => "hav",
                "CW" => "cur",
                "DO" => "sdq",
                "EC" => "uio",
                "GF" => "cay",
                "GT" => "gua",
                "GY" => "geo",
                "HN" => "tgu",
                "HT" => "pap",
                "NI" => "mga",
                "PA" => "pty",
                "PE" => "lim",
                "PY" => "asu",
                "SR" => "pbm",
                "SV" => "sal",
                "SX" => "sxm",
                "TT" => "pos",
                "UY" => "mvd",
                "AW" => "aua",
                "BZ" => "bze",
                _ => panic!("no measurement city for {other}"),
            };
            let info = country::info(cc).expect("known country");
            vec![City {
                code,
                lat: info.location.lat_deg(),
                lon: info.location.lon_deg(),
            }]
        }
    }
}

/// Probe-count anchors `(country, 2016, 2024)`. Region totals ≈300→450;
/// Venezuela 10→30 keeps its paper rank (6th) in the region.
const PROBE_ANCHORS: &[(&str, u32, u32)] = &[
    ("AR", 60, 80),
    ("BR", 80, 118),
    ("MX", 25, 40),
    ("CL", 20, 35),
    ("CO", 15, 30),
    ("VE", 10, 30),
    ("UY", 10, 15),
    ("CR", 8, 12),
    ("EC", 7, 10),
    ("PE", 7, 12),
    ("PA", 6, 9),
    ("DO", 5, 8),
    ("GT", 5, 7),
    ("TT", 4, 6),
    ("BO", 4, 6),
    ("PY", 4, 6),
    ("SV", 3, 5),
    ("HN", 3, 4),
    ("NI", 2, 3),
    ("HT", 2, 3),
    ("CU", 2, 3),
    ("BZ", 2, 3),
    ("SR", 2, 3),
    ("GY", 2, 3),
    ("CW", 3, 5),
    ("AW", 2, 3),
    ("BQ", 1, 2),
    ("SX", 1, 2),
    ("GF", 2, 3),
];

/// Root-replica anchors `(country, detected 2016, detected 2024)`.
/// Region sums: 59 → 138. Venezuela is scripted separately.
const ROOT_ANCHORS: &[(&str, u32, u32)] = &[
    ("BR", 18, 41),
    ("AR", 14, 15),
    ("CL", 5, 20),
    ("MX", 4, 16),
    ("CO", 3, 8),
    ("PA", 2, 6),
    ("UY", 2, 4),
    ("PE", 2, 5),
    ("CR", 1, 4),
    ("EC", 1, 3),
    ("TT", 1, 2),
    ("DO", 1, 3),
    ("GT", 1, 2),
    ("HT", 1, 1),
    ("CU", 1, 1),
    ("BO", 0, 2),
    ("PY", 0, 2),
    ("SV", 0, 1),
    ("HN", 0, 1),
    ("NI", 0, 1),
    ("GY", 0, 1),
];

/// The assembled DNS world.
#[derive(Debug, Clone)]
pub struct DnsWorld {
    /// The probe registry.
    pub probes: ProbeRegistry,
    /// Root instances over time.
    pub roots: RootDeployment,
    /// GPDNS points of presence over time.
    pub gpdns_sites: Vec<GpdnsSite>,
}

/// Build the DNS world.
pub fn build_dns_world(seed: u64) -> DnsWorld {
    let mut rng = Rng::seeded(seed).fork("dns");
    DnsWorld {
        probes: build_probes(&mut rng),
        roots: build_roots(),
        gpdns_sites: build_gpdns_sites(),
    }
}

fn miami() -> GeoPoint {
    geo::airport("mia").expect("airport table").location
}

fn build_probes(rng: &mut Rng) -> ProbeRegistry {
    let mut reg = ProbeRegistry::new();
    let mut id = 1u32;
    for &(cc, n2016, n2024) in PROBE_ANCHORS {
        let code = CountryCode::of(cc);
        let city_list = cities(code);
        for i in 0..n2024 {
            // Venezuela's probe geography follows Appendix J: most
            // probes in Caracas, the fast minority in the west.
            let city_idx = if code == country::VE {
                match i % 10 {
                    0..=5 => 0, // Caracas
                    6 | 7 => 1, // Maracaibo
                    _ => 2,     // Colombian border
                }
            } else {
                i as usize % city_list.len()
            };
            let city = city_list[city_idx % city_list.len()];
            // First `n2016` probes predate the window; later ones arrive
            // on a linear schedule through 2023.
            let active_since = if i < n2016 {
                MonthStamp::new(2014, 1).plus((i % 24) as i32)
            } else {
                let j = i - n2016;
                let span = (n2024 - n2016).max(1);
                MonthStamp::new(2016, 6).plus((j * 88 / span) as i32)
            };
            // Venezuelan probes: CANTV hosts exactly 8, all in Caracas,
            // all egressing through Miami. Other Caracas hosts split
            // between Miami-hauling ISPs and direct ones; probes outside
            // the capital sit on small access networks with direct
            // routing (Appendix J).
            let (asn, egress) = if code == country::VE {
                if city.code == "ccs" {
                    // The first eight Caracas probes (i ∈ {0..5, 10, 11})
                    // are CANTV-hosted and hauled to Miami.
                    if i < 12 {
                        (Asn(8048), Some(miami()))
                    } else {
                        let asn = [Asn(21826), Asn(6306), Asn(11562)][i as usize % 3];
                        // Most Caracas hosts also route internationally
                        // via Miami; a few ride direct wholesale paths.
                        let egress = if i % 4 != 0 { Some(miami()) } else { None };
                        (asn, egress)
                    }
                } else {
                    // Western probes sit on small access networks with
                    // direct (non-CANTV) routing.
                    (Asn(275_000 + (i % 5)), None)
                }
            } else {
                (Asn(280_000 + (fnv(cc) % 900) * 10 + (i % 8)), None)
            };
            // Scatter the probe a little around its city.
            let jitter = 0.25;
            reg.add(Probe {
                id,
                country: code,
                location: GeoPoint::new(
                    city.lat + rng.uniform(-jitter, jitter),
                    city.lon + rng.uniform(-jitter, jitter),
                ),
                asn,
                active_since,
                active_until: None,
                egress,
            });
            id += 1;
        }
    }
    reg
}

fn build_roots() -> RootDeployment {
    let mut dep = RootDeployment::new();

    // ——— Venezuela, scripted (§5.4) ———
    let ve = cities(country::VE);
    let ccs = GeoPoint::new(ve[0].lat, ve[0].lon);
    let mar = GeoPoint::new(ve[1].lat, ve[1].lon);
    dep.add(RootInstance {
        letter: RootLetter::L,
        site: "ccs".into(),
        unit: 1,
        country: country::VE,
        location: ccs,
        active_since: MonthStamp::new(2015, 6),
        active_until: Some(MonthStamp::new(2019, 6)),
        global: false,
    });
    dep.add(RootInstance {
        letter: RootLetter::F,
        site: "ccs".into(),
        unit: 1,
        country: country::VE,
        location: ccs,
        active_since: MonthStamp::new(2015, 6),
        active_until: Some(MonthStamp::new(2018, 3)),
        global: false,
    });
    dep.add(RootInstance {
        letter: RootLetter::L,
        site: "mai".into(),
        unit: 1,
        country: country::VE,
        location: mar,
        active_since: MonthStamp::new(2019, 8),
        active_until: Some(MonthStamp::new(2021, 2)),
        global: false,
    });

    // ——— The rest of the region, scheduled from anchors ———
    for &(cc, n2016, n2024) in ROOT_ANCHORS {
        let code = CountryCode::of(cc);
        let city_list = cities(code);
        for i in 0..n2024 {
            let letter = RootLetter::ALL[i as usize % 13];
            let city = city_list[(i as usize / 13) % city_list.len()];
            let unit = 1 + (i as usize / (13 * city_list.len())) as u8;
            let active_since = if i < n2016 {
                MonthStamp::new(2014, 1)
            } else {
                let j = i - n2016;
                let span = (n2024 - n2016).max(1);
                MonthStamp::new(2016, 6).plus((j * 88 / span) as i32)
            };
            // A handful of nodes in the biggest hubs are global; hosted
            // +Raíces-style nodes are domestic-only.
            let global = matches!(cc, "BR" | "CO" | "MX" | "PA" | "CL" | "AR") && i < 3;
            dep.add(RootInstance {
                letter,
                site: city.code.into(),
                unit,
                country: code,
                location: GeoPoint::new(city.lat, city.lon),
                active_since,
                active_until: None,
                global,
            });
        }
    }

    // ——— Overseas global nodes (Appendix E's origin countries) ———
    let overseas: &[(&str, &str, &[RootLetter])] = &[
        // US sites host most letters.
        (
            "mia",
            "US",
            &[
                RootLetter::A,
                RootLetter::B,
                RootLetter::C,
                RootLetter::D,
                RootLetter::F,
                RootLetter::J,
                RootLetter::L,
                RootLetter::M,
            ],
        ),
        (
            "iad",
            "US",
            &[
                RootLetter::A,
                RootLetter::C,
                RootLetter::D,
                RootLetter::H,
                RootLetter::J,
                RootLetter::L,
            ],
        ),
        ("jfk", "US", &[RootLetter::B, RootLetter::F, RootLetter::M]),
        ("lax", "US", &[RootLetter::A, RootLetter::C, RootLetter::L]),
        // European operators: some letters have no US-east presence, so
        // Venezuelan queries surface in GB/DE/FR/NL (Fig. 16).
        ("lhr", "GB", &[RootLetter::K]),
        ("fra", "DE", &[RootLetter::G]),
        ("ams", "NL", &[RootLetter::I]),
        ("cdg", "FR", &[RootLetter::E]),
    ];
    for &(site, cc, letters) in overseas {
        let loc = geo::airport(site).expect("airport table").location;
        for &letter in letters {
            dep.add(RootInstance {
                letter,
                site: site.into(),
                unit: 1,
                country: CountryCode::of(cc),
                location: loc,
                active_since: MonthStamp::new(2010, 1),
                active_until: None,
                global: true,
            });
        }
    }

    dep
}

/// The GPDNS rollout: Miami first, the big LACNIC hubs through the
/// mid-2010s, Bogotá in 2016, Rio in 2019 — nothing in Venezuela, ever
/// (§7.2).
fn build_gpdns_sites() -> Vec<GpdnsSite> {
    let site = |code: &str, y: i32, m: u8| GpdnsSite {
        id: code.into(),
        location: geo::airport(code).expect("airport table").location,
        active_since: MonthStamp::new(y, m),
        active_until: None,
    };
    vec![
        site("mia", 2012, 1),
        site("iad", 2012, 1),
        site("lax", 2012, 6),
        site("mex", 2015, 3),
        site("gru", 2014, 9),
        site("scl", 2016, 2),
        site("eze", 2016, 8),
        site("bog", 2016, 10),
        site("lim", 2017, 5),
        site("pty", 2018, 4),
        site("gig", 2019, 7),
        site("mvd", 2019, 11),
        site("sjo", 2021, 6),
    ]
}

fn fnv(s: &str) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for b in s.bytes() {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use lacnet_atlas::campaign;
    use lacnet_atlas::gpdns::{GpdnsCampaign, LatencyModel};

    fn world() -> DnsWorld {
        build_dns_world(42)
    }

    #[test]
    fn fig17_probe_counts() {
        let w = world();
        let ve = w.probes.count_series(
            country::VE,
            MonthStamp::new(2016, 1),
            MonthStamp::new(2024, 1),
        );
        assert_eq!(ve.get(MonthStamp::new(2016, 1)), Some(10.0));
        assert_eq!(ve.get(MonthStamp::new(2024, 1)), Some(30.0));
        // Region total ≈ 300 → 450.
        let total_2016: usize = w.probes.active_in(MonthStamp::new(2016, 1)).len();
        let total_2024: usize = w.probes.active_in(MonthStamp::new(2024, 1)).len();
        assert!((280..=320).contains(&total_2016), "2016 total {total_2016}");
        assert!((430..=470).contains(&total_2024), "2024 total {total_2024}");
        // Venezuela ranks ≈6th by probes in the region.
        let counts = w.probes.counts_by_country(MonthStamp::new(2023, 6));
        let mut ranked: Vec<(usize, CountryCode)> =
            counts.iter().map(|(&cc, &n)| (n, cc)).collect();
        ranked.sort_by_key(|r| std::cmp::Reverse(r.0));
        let rank = ranked
            .iter()
            .position(|&(_, cc)| cc == country::VE)
            .unwrap()
            + 1;
        assert!((5..=7).contains(&rank), "VE probe rank {rank}");
        // CANTV hosts exactly 8 probes.
        let cantv = w.probes.all().iter().filter(|p| p.asn == Asn(8048)).count();
        assert_eq!(cantv, 8);
    }

    #[test]
    fn fig6_replica_counts() {
        let w = world();
        let series = campaign::replica_count_series(
            &w.probes,
            &w.roots,
            MonthStamp::new(2016, 1),
            MonthStamp::new(2016, 1),
        );
        let total_2016: f64 = country::lacnic_codes()
            .filter_map(|cc| {
                series
                    .get(&cc)
                    .and_then(|s| s.get(MonthStamp::new(2016, 1)))
            })
            .sum();
        assert!(
            (54.0..=64.0).contains(&total_2016),
            "2016 region total {total_2016}"
        );
        assert_eq!(
            series[&country::VE].get(MonthStamp::new(2016, 1)),
            Some(2.0)
        );
        assert_eq!(
            series[&country::BR].get(MonthStamp::new(2016, 1)),
            Some(18.0)
        );

        let series = campaign::replica_count_series(
            &w.probes,
            &w.roots,
            MonthStamp::new(2024, 1),
            MonthStamp::new(2024, 1),
        );
        let total_2024: f64 = country::lacnic_codes()
            .filter_map(|cc| {
                series
                    .get(&cc)
                    .and_then(|s| s.get(MonthStamp::new(2024, 1)))
            })
            .sum();
        assert!(
            (130.0..=146.0).contains(&total_2024),
            "2024 region total {total_2024}"
        );
        assert!(
            series
                .get(&country::VE)
                .is_none_or(|s| s.get(MonthStamp::new(2024, 1)).is_none()),
            "no VE replicas remain"
        );
        assert_eq!(
            series[&country::BR].get(MonthStamp::new(2024, 1)),
            Some(41.0)
        );
        assert_eq!(
            series[&country::CL].get(MonthStamp::new(2024, 1)),
            Some(20.0)
        );
        assert_eq!(
            series[&country::MX].get(MonthStamp::new(2024, 1)),
            Some(16.0)
        );
        assert_eq!(
            series[&country::AR].get(MonthStamp::new(2024, 1)),
            Some(15.0)
        );
    }

    #[test]
    fn fig16_origin_shift() {
        let w = world();
        let heat = campaign::origin_heatmap(
            &w.probes,
            &w.roots,
            country::VE,
            MonthStamp::new(2017, 1),
            MonthStamp::new(2017, 1),
        );
        assert!(heat[&country::VE].get(MonthStamp::new(2017, 1)).unwrap() >= 2.0);

        let heat = campaign::origin_heatmap(
            &w.probes,
            &w.roots,
            country::VE,
            MonthStamp::new(2023, 1),
            MonthStamp::new(2023, 1),
        );
        let at = |cc: &str| {
            heat.get(&CountryCode::of(cc))
                .and_then(|s| s.get(MonthStamp::new(2023, 1)))
                .unwrap_or(0.0)
        };
        assert_eq!(at("VE"), 0.0, "domestic replicas gone");
        assert!(at("US") >= 4.0, "US dominates: {}", at("US"));
        for cc in ["GB", "DE", "FR", "NL"] {
            assert!(at(cc) >= 1.0, "{cc} visible from VE");
        }
        assert!(at("CO") >= 1.0, "Colombian fallback");
    }

    #[test]
    fn fig12_rtt_calibration() {
        let w = world();
        let campaign = GpdnsCampaign::new(&w.probes, &w.gpdns_sites, LatencyModel::default(), 42);
        let series = campaign.median_series(MonthStamp::new(2023, 7), MonthStamp::new(2023, 12));
        let ve = series[&country::VE].trailing_mean(6).unwrap();
        assert!((28.0..=46.0).contains(&ve), "VE ≈36.56 ms, got {ve}");
        let br = series[&country::BR].trailing_mean(6).unwrap();
        assert!(br < 15.0, "BR ≈7.5 ms, got {br}");
        // Regional mean of country medians ≈ 17.74 ms → VE ≈ 2×.
        let mut vals = Vec::new();
        for cc in country::lacnic_codes() {
            if let Some(s) = series.get(&cc) {
                if let Some(v) = s.trailing_mean(6) {
                    vals.push(v);
                }
            }
        }
        let region = vals.iter().sum::<f64>() / vals.len() as f64;
        let ratio = ve / region;
        assert!(
            (1.5..=2.8).contains(&ratio),
            "VE/region ratio {ratio} (region {region})"
        );
    }

    #[test]
    fn fig12_colombia_improves_with_bogota_site() {
        let w = world();
        let campaign = GpdnsCampaign::new(&w.probes, &w.gpdns_sites, LatencyModel::default(), 42);
        let series = campaign.median_series(MonthStamp::new(2016, 1), MonthStamp::new(2017, 6));
        let co = &series[&country::CO];
        let before = co.get(MonthStamp::new(2016, 1)).unwrap();
        let after = co.get(MonthStamp::new(2017, 6)).unwrap();
        assert!(before > 35.0, "pre-Bogotá {before}");
        assert!(after < 15.0, "post-Bogotá {after}");
    }

    #[test]
    fn fig20_border_probes_fastest() {
        use lacnet_atlas::gpdns::RttBucket;
        let w = world();
        let campaign = GpdnsCampaign::new(&w.probes, &w.gpdns_sites, LatencyModel::default(), 42);
        let obs = campaign.run_month(MonthStamp::new(2023, 12));
        let ve: Vec<_> = obs
            .iter()
            .filter(|o| o.probe_country == country::VE)
            .collect();
        assert!(!ve.is_empty());
        // The fastest VE probes are in the west (border / Maracaibo).
        let fastest = ve
            .iter()
            .min_by(|a, b| a.rtt_ms.partial_cmp(&b.rtt_ms).unwrap())
            .unwrap();
        assert!(
            fastest.location.lon_deg() < -70.0,
            "fastest at lon {}",
            fastest.location.lon_deg()
        );
        assert!(matches!(
            RttBucket::of(fastest.rtt_ms),
            RttBucket::Under10 | RttBucket::From10To20
        ));
        // Caracas probes behind Miami haulage sit above 30 ms.
        let caracas_max = ve
            .iter()
            .filter(|o| o.location.lon_deg() > -68.0)
            .map(|o| o.rtt_ms)
            .fold(0.0f64, f64::max);
        assert!(caracas_max > 30.0, "caracas {caracas_max}");
    }

    #[test]
    fn no_gpdns_site_in_venezuela() {
        let w = world();
        for s in &w.gpdns_sites {
            let d = s.location.distance_km(GeoPoint::new(10.48, -66.90));
            assert!(d > 500.0 || s.id != "ccs", "site {} too close", s.id);
        }
        assert!(w.gpdns_sites.iter().all(|s| s.id != "ccs" && s.id != "mar"));
    }
}
