//! Assembly: one call builds every dataset the study consumes.

use crate::addressing::Addressing;
use crate::bandwidth;
use crate::cables;
use crate::cdn;
use crate::config::{windows, WorldConfig};
use crate::dns::{self, DnsWorld};
use crate::economy::Economy;
use crate::facilities::PeeringDbBuilder;
use crate::operators::Operators;
use crate::topology::TopologyBuilder;
use crate::websites;
use lacnet_bgp::{PfxToAs, TopologyArchive};
use lacnet_mlab::aggregate::MonthlyAggregator;
use lacnet_offnets::certs::CertScan;
use lacnet_peeringdb::SnapshotArchive;
use lacnet_telegeo::CableMap;
use lacnet_types::MonthStamp;
use lacnet_webmeas::CountryTopSites;

/// A fully generated world: every dataset of the study, consistent with
/// one macro-economy and one seed.
pub struct World {
    /// The configuration it was generated from.
    pub config: WorldConfig,
    /// The macro-economy (Fig. 1, Fig. 13).
    pub economy: Economy,
    /// The operator cast, as2org mapping and APNIC-style populations.
    pub operators: Operators,
    /// Monthly AS-relationship snapshots since 1998 (Figs. 8, 9).
    pub topology: TopologyArchive,
    /// The allocation ledger and announcement policy (Figs. 2, 14).
    pub addressing: Addressing,
    /// Monthly PeeringDB snapshots since 2018-04 (Figs. 3, 10, 15, 21).
    pub peeringdb: SnapshotArchive,
    /// The submarine cable map (Fig. 4).
    pub cables: CableMap,
    /// Probes, root deployment and GPDNS sites (Figs. 6, 12, 16, 17, 20).
    pub dns: DnsWorld,
    /// The streamed M-Lab aggregation (Fig. 11).
    pub mlab: MonthlyAggregator,
    /// Yearly TLS scans 2013–2021 (Figs. 7, 18).
    pub cert_scans: Vec<CertScan>,
    /// Top-site scrapes, January 2024 (Fig. 19).
    pub top_sites: Vec<CountryTopSites>,
}

impl World {
    /// Generate the world. Deterministic in `config.seed`.
    pub fn generate(config: WorldConfig) -> World {
        let economy = Economy::generate(config.economy_start, config.end);
        let operators = Operators::generate(config.seed);
        let topology =
            TopologyBuilder::new(&operators, &economy).build(windows::serial1_start(), config.end);
        let addressing = Addressing::generate(&operators, &economy);
        let peeringdb =
            PeeringDbBuilder::new(&operators).build(windows::peeringdb_start(), config.end);
        let cables = cables::build_cable_map();
        let dns = dns::build_dns_world(config.seed);
        let mlab = bandwidth::build_aggregate(
            &operators,
            config.seed,
            config.mlab_volume_scale,
            windows::mlab_start(),
            config.end,
        );
        let cert_scans = cdn::build_cert_scans(&operators);
        let top_sites = websites::build_top_sites(config.seed);
        World {
            config,
            economy,
            operators,
            topology,
            addressing,
            peeringdb,
            cables,
            dns,
            mlab,
            cert_scans,
            top_sites,
        }
    }

    /// The announced-prefix table for `month`, filtered by valley-free
    /// visibility over that month's topology.
    pub fn pfx2as_at(&self, month: MonthStamp) -> PfxToAs {
        match self.topology.get(month) {
            Some(graph) => self.addressing.pfx2as_at(month, graph),
            None => PfxToAs::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lacnet_types::country;

    #[test]
    fn world_generates_consistently() {
        let world = World::generate(WorldConfig::test());
        // Every dataset is populated.
        assert!(!world.topology.is_empty());
        assert!(!world.peeringdb.is_empty());
        assert!(!world.cables.is_empty());
        assert!(!world.dns.probes.is_empty());
        assert!(world.mlab.group_count() > 1000);
        assert_eq!(world.cert_scans.len(), 9);
        assert_eq!(world.top_sites.len(), 9);
        // Cross-dataset consistency: CANTV appears in the topology, the
        // ledger, the M-Lab aggregate's country and the populations.
        let m = MonthStamp::new(2020, 6);
        assert!(world.topology.get(m).unwrap().contains(lacnet_types::Asn(8048)));
        assert!(world
            .addressing
            .ledger()
            .space_of_holder(lacnet_types::Asn(8048), m.last_day())
            > 0);
        assert!(world.mlab.test_count_for(country::VE) > 0);
        let table = world.pfx2as_at(m);
        assert!(!table.prefixes_of(lacnet_types::Asn(8048)).is_empty());
    }
}
