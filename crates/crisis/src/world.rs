//! Assembly: one call builds every dataset the study consumes.

use crate::addressing::Addressing;
use crate::bandwidth;
use crate::cables;
use crate::cdn;
use crate::config::{windows, WorldConfig};
use crate::dns::{self, DnsWorld};
use crate::economy::Economy;
use crate::facilities::PeeringDbBuilder;
use crate::operators::Operators;
use crate::topology::TopologyBuilder;
use crate::websites;
use lacnet_bgp::{ConeCache, PfxToAs, TopologyArchive};
use lacnet_mlab::aggregate::MonthlyAggregator;
use lacnet_offnets::certs::CertScan;
use lacnet_peeringdb::SnapshotArchive;
use lacnet_telegeo::CableMap;
use lacnet_types::{sweep, MonthStamp};
use lacnet_webmeas::CountryTopSites;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Memoises the per-month announced-prefix tables.
///
/// Deriving a month's [`PfxToAs`] runs valley-free propagation over that
/// month's topology — by far the most expensive per-month computation in
/// the battery — and Fig. 2, Fig. 14 and the dataset export all walk the
/// same window. The cache guarantees each month is computed at most once
/// per process, even when sweeps race from several threads: each month
/// owns a [`OnceLock`] slot, so two threads asking for the *same* month
/// serialise on its initialiser while *different* months still compute
/// concurrently.
#[derive(Default)]
pub struct SnapshotCache {
    slots: RwLock<BTreeMap<MonthStamp, Arc<OnceLock<Arc<PfxToAs>>>>>,
    computations: AtomicUsize,
}

impl SnapshotCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The table for `month`, computing it with `compute` on first use.
    pub fn get_or_compute(
        &self,
        month: MonthStamp,
        compute: impl FnOnce() -> PfxToAs,
    ) -> Arc<PfxToAs> {
        let slot = {
            let slots = self.slots.read().expect("pfx2as cache lock poisoned");
            slots.get(&month).cloned()
        };
        let slot = match slot {
            Some(slot) => slot,
            None => {
                let mut slots = self.slots.write().expect("pfx2as cache lock poisoned");
                slots.entry(month).or_default().clone()
            }
        };
        slot.get_or_init(|| {
            self.computations.fetch_add(1, Ordering::Relaxed);
            Arc::new(compute())
        })
        .clone()
    }

    /// How many tables have actually been computed (not served from
    /// cache) so far.
    pub fn computations(&self) -> usize {
        self.computations.load(Ordering::Relaxed)
    }
}

/// A fully generated world: every dataset of the study, consistent with
/// one macro-economy and one seed.
pub struct World {
    /// The configuration it was generated from.
    pub config: WorldConfig,
    /// The scenario it was generated under (the default is the paper's
    /// Venezuela storyline — see [`crate::scenario::Scenario::venezuela`]).
    pub scenario: crate::scenario::Scenario,
    /// The macro-economy (Fig. 1, Fig. 13).
    pub economy: Economy,
    /// The operator cast, as2org mapping and APNIC-style populations.
    pub operators: Operators,
    /// Monthly AS-relationship snapshots since 1998 (Figs. 8, 9).
    pub topology: TopologyArchive,
    /// The allocation ledger and announcement policy (Figs. 2, 14).
    pub addressing: Addressing,
    /// Monthly PeeringDB snapshots since 2018-04 (Figs. 3, 10, 15, 21).
    pub peeringdb: SnapshotArchive,
    /// The submarine cable map (Fig. 4).
    pub cables: CableMap,
    /// Probes, root deployment and GPDNS sites (Figs. 6, 12, 16, 17, 20).
    pub dns: DnsWorld,
    /// The streamed M-Lab aggregation (Fig. 11).
    pub mlab: MonthlyAggregator,
    /// Yearly TLS scans 2013–2021 (Figs. 7, 18).
    pub cert_scans: Vec<CertScan>,
    /// Top-site scrapes, January 2024 (Fig. 19).
    pub top_sites: Vec<CountryTopSites>,
    /// Shared per-month pfx2as tables (see [`SnapshotCache`]).
    pfx2as_cache: SnapshotCache,
    /// Shared per-`(month, asn)` customer cones (see
    /// [`lacnet_bgp::ConeCache`]).
    cone_cache: ConeCache,
}

/// The study's focal AS: CANTV (AS8048), whose cones and degrees the
/// Fig. 8/9 analytics, [`World::prewarm`] and the dataset export all read.
pub const FOCAL_AS: lacnet_types::Asn = lacnet_types::Asn(8048);

impl World {
    /// Generate the world. Deterministic in `config.seed` — every builder
    /// is a pure function of the config, so running the independent ones
    /// on separate threads yields a byte-identical world.
    pub fn generate(config: WorldConfig) -> World {
        Self::generate_with(config, crate::scenario::Scenario::venezuela())
    }

    /// [`World::generate`] under an explicit scenario: the overlays reach
    /// every builder (economy anchors, transit withdrawals, IXP buildouts,
    /// cable failures, NDT volume factors, blackout schedules). The
    /// default scenario's overlays are exactly the historical record, so
    /// `generate_with(c, Scenario::venezuela())` is byte-identical to
    /// `generate(c)`.
    pub fn generate_with(config: WorldConfig, scenario: crate::scenario::Scenario) -> World {
        // Phase 1: the two roots every other dataset derives from.
        let (economy, operators) = sweep::join2(
            || Economy::generate_with(config.economy_start, config.end, &scenario.gdp_anchors),
            || Operators::generate(config.seed),
        );
        // Phase 2: the eight datasets, each a function of the roots, the
        // config and the scenario alone.
        let scenario_ref = &scenario;
        let (topology, addressing, peeringdb, cables, dns, mlab, cert_scans, top_sites) =
            std::thread::scope(|s| {
                let topology = s.spawn(|| {
                    TopologyBuilder::new(&operators, &economy)
                        .with_scenario(scenario_ref)
                        .build(windows::serial1_start(), config.end)
                });
                let addressing = s.spawn(|| Addressing::generate(&operators, &economy));
                let peeringdb = s.spawn(|| {
                    PeeringDbBuilder::new(&operators)
                        .with_scenario(scenario_ref)
                        .build(windows::peeringdb_start(), config.end)
                });
                let cables = s.spawn(|| cables::build_cable_map_with(&scenario_ref.cable_failures));
                let dns = s.spawn(|| dns::build_dns_world(config.seed));
                let mlab = s.spawn(|| {
                    bandwidth::build_aggregate_scenario(
                        &operators,
                        &config,
                        scenario_ref,
                        windows::mlab_start(),
                        config.end,
                    )
                });
                let cert_scans = s.spawn(|| cdn::build_cert_scans(&operators));
                let top_sites = s.spawn(|| websites::build_top_sites(config.seed));
                (
                    topology.join().expect("topology builder panicked"),
                    addressing.join().expect("addressing builder panicked"),
                    peeringdb.join().expect("peeringdb builder panicked"),
                    cables.join().expect("cable builder panicked"),
                    dns.join().expect("dns builder panicked"),
                    mlab.join().expect("mlab builder panicked"),
                    cert_scans.join().expect("cert-scan builder panicked"),
                    top_sites.join().expect("top-site builder panicked"),
                )
            });
        World {
            config,
            scenario,
            economy,
            operators,
            topology,
            addressing,
            peeringdb,
            cables,
            dns,
            mlab,
            cert_scans,
            top_sites,
            pfx2as_cache: SnapshotCache::default(),
            cone_cache: ConeCache::new(),
        }
    }

    /// The announced-prefix table for `month`, filtered by valley-free
    /// visibility over that month's topology.
    ///
    /// Tables are memoised: across Fig. 2, Fig. 14, the dataset export
    /// and any number of threads, each month is derived at most once per
    /// process (see [`Self::pfx2as_computations`]).
    pub fn pfx2as_at(&self, month: MonthStamp) -> Arc<PfxToAs> {
        self.pfx2as_cache
            .get_or_compute(month, || self.pfx2as_uncached(month))
    }

    /// Derive `month`'s table from scratch, bypassing the cache. The
    /// reference implementation [`Self::pfx2as_at`] is checked against,
    /// and the baseline the ablation benches measure.
    pub fn pfx2as_uncached(&self, month: MonthStamp) -> PfxToAs {
        match self.topology.get(month) {
            Some(graph) => self.addressing.pfx2as_at(month, graph),
            None => PfxToAs::new(),
        }
    }

    /// How many months have actually been derived (cache misses) so far.
    pub fn pfx2as_computations(&self) -> usize {
        self.pfx2as_cache.computations()
    }

    /// The customer cone of `asn` in `month`'s topology snapshot,
    /// memoised in the shared [`ConeCache`]: each `(month, asn)` pair
    /// walks the graph at most once per process, however many experiments
    /// or worker threads ask (see [`Self::cone_computations`]). A month
    /// outside the archive yields the singleton `{asn}`, matching
    /// `customer_cone` on a graph that lacks the AS.
    pub fn customer_cone_at(
        &self,
        month: MonthStamp,
        asn: lacnet_types::Asn,
    ) -> Arc<std::collections::BTreeSet<lacnet_types::Asn>> {
        self.cone_cache
            .get_or_compute(month, asn, || self.customer_cone_uncached(month, asn))
    }

    /// Compute `asn`'s cone at `month` from scratch, bypassing the cache.
    /// The reference [`Self::customer_cone_at`] is checked against, and
    /// the baseline the ablation benches measure.
    pub fn customer_cone_uncached(
        &self,
        month: MonthStamp,
        asn: lacnet_types::Asn,
    ) -> std::collections::BTreeSet<lacnet_types::Asn> {
        match self.topology.get(month) {
            Some(graph) => graph.customer_cone(asn),
            None => std::collections::BTreeSet::from([asn]),
        }
    }

    /// How many cones have actually been computed (cache misses) so far.
    pub fn cone_computations(&self) -> usize {
        self.cone_cache.computations()
    }

    /// The world's shared [`ConeCache`] handle — the same memo the cone
    /// accessors use, exposed so cache-aware analytics (the Fig. 9
    /// transit matrix, the inference extension's path computations) can
    /// share their walks with everything else in the process.
    pub fn cone_cache(&self) -> &ConeCache {
        &self.cone_cache
    }

    /// `asn`'s cone size for every month of the topology archive, served
    /// through the cache on sweep workers — the memoised counterpart of
    /// [`lacnet_bgp::analytics::cone_size_series`].
    pub fn cone_size_series(&self, asn: lacnet_types::Asn) -> lacnet_types::TimeSeries {
        let months: Vec<MonthStamp> = self.topology.iter().map(|(m, _)| m).collect();
        sweep::months_sweep(&months, |m| self.customer_cone_at(m, asn).len() as f64)
            .into_iter()
            .collect()
    }

    /// Fill the per-month caches across worker threads so later sweeps
    /// and experiments hit warm state. Covers the full cache set:
    ///
    /// * **pfx2as tables** for every month in `[start, end]` (Figs. 2 and
    ///   14, dataset export);
    /// * **customer cones** of the focal AS ([`FOCAL_AS`], CANTV) for
    ///   every month of the topology archive (Figs. 8 and 9).
    ///
    /// Entries already cached are not recomputed, so repeated prewarms
    /// are no-ops.
    pub fn prewarm(&self, start: MonthStamp, end: MonthStamp) {
        sweep::join2(
            || {
                sweep::month_range(start, end, |m| {
                    self.pfx2as_at(m);
                });
            },
            || {
                self.cone_size_series(FOCAL_AS);
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lacnet_types::country;

    /// Generation takes seconds, so the module's tests share one world.
    fn test_world() -> &'static World {
        static WORLD: OnceLock<World> = OnceLock::new();
        WORLD.get_or_init(|| World::generate(WorldConfig::test()))
    }

    #[test]
    fn world_generates_consistently() {
        let world = test_world();
        // Every dataset is populated.
        assert!(!world.topology.is_empty());
        assert!(!world.peeringdb.is_empty());
        assert!(!world.cables.is_empty());
        assert!(!world.dns.probes.is_empty());
        assert!(world.mlab.group_count() > 1000);
        assert_eq!(world.cert_scans.len(), 9);
        assert_eq!(world.top_sites.len(), 9);
        // Cross-dataset consistency: CANTV appears in the topology, the
        // ledger, the M-Lab aggregate's country and the populations.
        let m = MonthStamp::new(2020, 6);
        assert!(world
            .topology
            .get(m)
            .unwrap()
            .contains(lacnet_types::Asn(8048)));
        assert!(
            world
                .addressing
                .ledger()
                .space_of_holder(lacnet_types::Asn(8048), m.last_day())
                > 0
        );
        assert!(world.mlab.test_count_for(country::VE) > 0);
        let table = world.pfx2as_at(m);
        assert!(!table.prefixes_of(lacnet_types::Asn(8048)).is_empty());
    }

    #[test]
    fn pfx2as_cache_computes_each_month_at_most_once() {
        let world = test_world();
        let m = MonthStamp::new(2019, 3);
        let fresh = world.pfx2as_uncached(m);
        let before = world.pfx2as_computations();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| world.pfx2as_at(m));
            }
        });
        assert_eq!(
            world.pfx2as_computations() - before,
            1,
            "eight concurrent requests must share one computation"
        );
        assert_eq!(world.pfx2as_at(m).to_text(), fresh.to_text());
        // Served again: still no further computation.
        world.pfx2as_at(m);
        assert_eq!(world.pfx2as_computations() - before, 1);
    }

    #[test]
    fn prewarm_covers_the_range_without_duplicates() {
        let world = test_world();
        let start = MonthStamp::new(2010, 1);
        let end = MonthStamp::new(2010, 12);
        world.prewarm(start, end);
        let after = world.pfx2as_computations();
        let cones_after = world.cone_computations();
        // A second prewarm of the same window is a no-op for both caches.
        world.prewarm(start, end);
        assert_eq!(world.pfx2as_computations(), after);
        assert_eq!(world.cone_computations(), cones_after);
        assert!(!world.pfx2as_at(MonthStamp::new(2010, 6)).is_empty());
        // The cone side warms the focal AS across the whole archive.
        let before = world.cone_computations();
        world.cone_size_series(FOCAL_AS);
        assert_eq!(world.cone_computations(), before);
    }

    #[test]
    fn cone_cache_computes_each_key_at_most_once() {
        let world = test_world();
        let m = MonthStamp::new(2012, 5);
        let fresh = world.customer_cone_uncached(m, FOCAL_AS);
        let before = world.cone_computations();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| world.customer_cone_at(m, FOCAL_AS));
            }
        });
        assert_eq!(
            world.cone_computations() - before,
            1,
            "eight concurrent requests must share one cone walk"
        );
        assert_eq!(*world.customer_cone_at(m, FOCAL_AS), fresh);
        // Served again: still no further computation.
        world.customer_cone_at(m, FOCAL_AS);
        assert_eq!(world.cone_computations() - before, 1);
        // Outside the archive: the singleton, like an unknown AS.
        let outside = MonthStamp::new(1901, 1);
        assert_eq!(
            *world.customer_cone_at(outside, FOCAL_AS),
            std::collections::BTreeSet::from([FOCAL_AS])
        );
    }
}
