//! The AS-level cast: operators per country, organisations, and eyeball
//! populations.
//!
//! Venezuela's roster is Table 1 verbatim (CANTV 21.50% of 20.1M users,
//! Telemic, Telefónica, Digitel, Fibex, Airtek, Viginet, NetUno,
//! Thundernet, Movilnet — Σ = 77.18%); the residual market is filled with
//! small synthetic access networks. Every other country gets an incumbent
//! (with the paper's quoted share where it gives one, e.g. ICE = 24.1% of
//! Costa Rica) plus a geometric tail of ISPs. The mapping to
//! organisations marks CANTV and Movilnet as siblings under the
//! Venezuelan state, as as2org+ does.

use lacnet_offnets::{AsOrgMap, PopulationEstimates};
use lacnet_types::rng::Rng;
use lacnet_types::{country, Asn, CountryCode};

/// What role an AS plays in its domestic market.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OperatorKind {
    /// The (often state-owned) incumbent eyeball network.
    Incumbent,
    /// A competitive access ISP.
    Isp,
    /// A mobile carrier.
    Mobile,
    /// A domestic non-eyeball network (bank, university) that buys
    /// transit from the incumbent.
    Enterprise,
}

/// One domestic operator.
#[derive(Debug, Clone, PartialEq)]
pub struct Operator {
    /// The operator's ASN.
    pub asn: Asn,
    /// Display name.
    pub name: String,
    /// Home country.
    pub country: CountryCode,
    /// Market role.
    pub kind: OperatorKind,
    /// Estimated Internet users served (0 for enterprises).
    pub users: u64,
}

/// Table 1, verbatim: Venezuela's ten largest ISPs as of May 2024.
pub const VE_TABLE1: &[(u32, &str, u64)] = &[
    (8048, "CANTV Servicios, Venezuela", 4_330_868),
    (21826, "Corporacion Telemic C.A.", 2_490_253),
    (6306, "TELEFONICA VENEZOLANA, C.A.", 2_110_464),
    (264731, "Corporacion Digitel C.A.", 1_419_723),
    (264628, "CORPORACION FIBEX TELECOM, C.A.", 1_316_463),
    (61461, "Airtek Solutions C.A.", 1_092_514),
    (263703, "VIGINET C.A", 962_781),
    (11562, "Net Uno, C.A.", 896_094),
    (272809, "THUNDERNET, C.A.", 515_761),
    (27889, "Telecomunicaciones MOVILNET", 417_762),
];

/// Venezuela's total estimated Internet population, consistent with
/// CANTV's Table 1 share of 21.50%.
pub const VE_INTERNET_USERS: u64 = 20_143_572;

/// Incumbent roster `(country, asn, name, eyeball share)`. Shares quoted
/// by the paper are used exactly (CANTV 21.50%, ICE 24.1%); the rest are
/// plausible figures for the region.
const INCUMBENTS: &[(&str, u32, &str, f64)] = &[
    ("AR", 7303, "Telecom Argentina", 0.33),
    ("BO", 6568, "Entel Bolivia", 0.42),
    ("BR", 28573, "Claro NXT", 0.21),
    ("CL", 27651, "Entel Chile", 0.26),
    ("CO", 3816, "Colombia Telecomunicaciones", 0.28),
    ("CR", 11830, "ICE", 0.241),
    ("CU", 27725, "ETECSA", 0.95),
    ("DO", 6400, "Claro Dominicana", 0.45),
    ("EC", 14420, "CNT Ecuador", 0.38),
    ("GT", 14754, "Telgua", 0.40),
    ("HN", 27932, "Hondutel", 0.30),
    ("HT", 27759, "Access Haiti", 0.35),
    ("MX", 8151, "Uninet (Telmex)", 0.44),
    ("NI", 25607, "Enitel", 0.45),
    ("PA", 18809, "Cable & Wireless Panama", 0.41),
    ("PE", 6147, "Telefonica del Peru", 0.39),
    ("PY", 23201, "Tigo Paraguay", 0.44),
    ("SV", 27773, "Claro SV", 0.40),
    ("TT", 27665, "TSTT", 0.48),
    ("UY", 6057, "Antel", 0.85),
];

/// The number of synthetic competitive ISPs per country (beyond the
/// incumbent), before the enterprise tail.
const ISPS_PER_COUNTRY: usize = 8;

/// Internet penetration applied to census population when sizing eyeball
/// markets outside Venezuela.
const PENETRATION: f64 = 0.70;

/// The full generated cast.
#[derive(Debug, Clone)]
pub struct Operators {
    all: Vec<Operator>,
    as2org: AsOrgMap,
    populations: PopulationEstimates,
}

impl Operators {
    /// Generate the cast. Deterministic for a given seed.
    pub fn generate(seed: u64) -> Self {
        let mut rng = Rng::seeded(seed).fork("operators");
        let mut all: Vec<Operator> = Vec::new();

        // Venezuela: Table 1 exactly, plus a residual tail of small ISPs
        // summing to the remaining 22.82% of the market.
        for &(asn, name, users) in VE_TABLE1 {
            let kind = match asn {
                8048 => OperatorKind::Incumbent,
                27889 | 264731 => OperatorKind::Mobile,
                _ => OperatorKind::Isp,
            };
            all.push(Operator {
                asn: Asn(asn),
                name: name.into(),
                country: country::VE,
                kind,
                users,
            });
        }
        let table1_total: u64 = VE_TABLE1.iter().map(|&(_, _, u)| u).sum();
        let mut residual = VE_INTERNET_USERS - table1_total;
        let mut i = 0u32;
        while residual > 0 {
            let users = if residual > 400_000 {
                150_000 + rng.below(250_000)
            } else {
                residual
            };
            all.push(Operator {
                asn: Asn(275_000 + i),
                name: format!("VE Access Network {}", i + 1),
                country: country::VE,
                kind: OperatorKind::Isp,
                users,
            });
            residual -= users;
            i += 1;
        }
        // CANTV's domestic enterprise customers (§6.1: "mostly academic
        // institutions and local banks").
        for (j, name) in [
            "Universidad Central de Venezuela",
            "Universidad de Los Andes",
            "Banco de Venezuela",
            "Banco Mercantil",
            "Banesco",
            "Universidad Simon Bolivar",
            "Banco Exterior",
            "Universidad del Zulia",
            "SENIAT",
            "Banco Bicentenario",
            "CorpoElec",
            "PDVSA Datos",
            "Universidad Catolica Andres Bello",
            "Banco Occidental",
            "Metro de Caracas",
            "Biblioteca Nacional",
            "IVIC",
            "CONATEL",
            "Universidad de Carabobo",
            "Seguros Caracas",
        ]
        .iter()
        .enumerate()
        {
            all.push(Operator {
                asn: Asn(276_500 + j as u32),
                name: (*name).into(),
                country: country::VE,
                kind: OperatorKind::Enterprise,
                users: 0,
            });
        }

        // Every other country: incumbent + geometric ISP tail.
        for info in country::LACNIC_REGION {
            if info.code == country::VE {
                continue;
            }
            let market = (info.population_millions * 1.0e6 * PENETRATION) as u64;
            let (inc_asn, inc_name, inc_share) = INCUMBENTS
                .iter()
                .find(|(cc, ..)| *cc == info.code.as_str())
                .map(|&(_, a, n, s)| (a, n.to_owned(), s))
                .unwrap_or_else(|| {
                    (
                        262_000 + fnv(info.code.as_str()),
                        format!("{} Telecom", info.name),
                        0.5,
                    )
                });
            all.push(Operator {
                asn: Asn(inc_asn),
                name: inc_name,
                country: info.code,
                kind: OperatorKind::Incumbent,
                users: (market as f64 * inc_share) as u64,
            });
            // Geometric tail over the remaining share.
            let mut remaining = 1.0 - inc_share;
            for k in 0..ISPS_PER_COUNTRY {
                let share = if k + 1 == ISPS_PER_COUNTRY {
                    remaining
                } else {
                    remaining * (0.35 + 0.1 * rng.f64())
                };
                remaining -= share;
                all.push(Operator {
                    asn: Asn(280_000 + fnv(info.code.as_str()) * 10 + k as u32),
                    name: format!("{} ISP {}", info.code, k + 1),
                    country: info.code,
                    kind: if k == 0 {
                        OperatorKind::Mobile
                    } else {
                        OperatorKind::Isp
                    },
                    users: (market as f64 * share) as u64,
                });
            }
        }

        // Organisations: the Venezuelan state, Telefónica's siblings.
        let mut as2org = AsOrgMap::new();
        as2org.add_org(1, "Estado Venezolano");
        as2org.assign(Asn(8048), 1);
        as2org.assign(Asn(27889), 1);
        // Off-net presence is a country-local property in the study's
        // method, so organisations group only domestic siblings —
        // Telefónica's Peruvian and Colombian units stay separate from
        // its Venezuelan one.
        as2org.add_org(2, "Telefonica Venezolana");
        as2org.assign(Asn(6306), 2);

        // Populations.
        let mut populations = PopulationEstimates::new();
        for op in &all {
            if op.users > 0 {
                populations.set(op.country, op.asn, op.users);
            }
        }

        Operators {
            all,
            as2org,
            populations,
        }
    }

    /// Every operator.
    pub fn all(&self) -> &[Operator] {
        &self.all
    }

    /// Operators of one country.
    pub fn in_country(&self, cc: CountryCode) -> Vec<&Operator> {
        self.all.iter().filter(|o| o.country == cc).collect()
    }

    /// The incumbent of one country.
    pub fn incumbent(&self, cc: CountryCode) -> Option<&Operator> {
        self.all
            .iter()
            .find(|o| o.country == cc && o.kind == OperatorKind::Incumbent)
    }

    /// The eyeball (users > 0) operators of one country, descending users.
    pub fn eyeballs(&self, cc: CountryCode) -> Vec<&Operator> {
        let mut v: Vec<&Operator> = self
            .all
            .iter()
            .filter(|o| o.country == cc && o.users > 0)
            .collect();
        v.sort_by(|a, b| b.users.cmp(&a.users).then(a.asn.cmp(&b.asn)));
        v
    }

    /// Enterprises (CANTV's domestic transit customers) of one country.
    pub fn enterprises(&self, cc: CountryCode) -> Vec<&Operator> {
        self.all
            .iter()
            .filter(|o| o.country == cc && o.kind == OperatorKind::Enterprise)
            .collect()
    }

    /// The AS→organisation mapping.
    pub fn as2org(&self) -> &AsOrgMap {
        &self.as2org
    }

    /// The eyeball population estimates.
    pub fn populations(&self) -> &PopulationEstimates {
        &self.populations
    }

    /// Look up an operator by ASN.
    pub fn by_asn(&self, asn: Asn) -> Option<&Operator> {
        self.all.iter().find(|o| o.asn == asn)
    }
}

/// Small deterministic hash for synthetic ASN assignment (bounded < 900).
fn fnv(s: &str) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for b in s.bytes() {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h % 900
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ops() -> Operators {
        Operators::generate(42)
    }

    #[test]
    fn table1_is_verbatim() {
        let ops = ops();
        let cantv = ops.by_asn(Asn(8048)).unwrap();
        assert_eq!(cantv.users, 4_330_868);
        assert_eq!(cantv.kind, OperatorKind::Incumbent);
        assert_eq!(ops.incumbent(country::VE).unwrap().asn, Asn(8048));
        // The ten Table-1 networks cover 77.18% of the market.
        let top10: u64 = VE_TABLE1.iter().map(|&(_, _, u)| u).sum();
        let share = top10 as f64 / VE_INTERNET_USERS as f64;
        assert!((share - 0.7718).abs() < 0.0005, "{share}");
        // CANTV's share is 21.50%.
        let share = cantv.users as f64 / ops.populations().country_total(country::VE) as f64;
        assert!((share - 0.2150).abs() < 0.001, "{share}");
    }

    #[test]
    fn ve_market_sums_to_total() {
        let ops = ops();
        assert_eq!(
            ops.populations().country_total(country::VE),
            VE_INTERNET_USERS
        );
    }

    #[test]
    fn every_country_has_an_incumbent_and_eyeballs() {
        let ops = ops();
        for info in country::LACNIC_REGION {
            let inc = ops.incumbent(info.code);
            assert!(inc.is_some(), "{} missing incumbent", info.code);
            assert!(!ops.eyeballs(info.code).is_empty(), "{}", info.code);
            let total = ops.populations().country_total(info.code);
            assert!(total > 0, "{} empty market", info.code);
        }
    }

    #[test]
    fn quoted_shares_hold() {
        let ops = ops();
        let ice = ops.incumbent(country::CR).unwrap();
        let share = ice.users as f64 / ops.populations().country_total(country::CR) as f64;
        assert!((share - 0.241).abs() < 0.01, "ICE share {share}");
        let antel = ops.incumbent(country::UY).unwrap();
        let share = antel.users as f64 / ops.populations().country_total(country::UY) as f64;
        assert!(share > 0.8, "Antel dominant: {share}");
    }

    #[test]
    fn state_org_groups_cantv_and_movilnet() {
        let ops = ops();
        assert!(ops.as2org().same_org(Asn(8048), Asn(27889)));
        assert!(!ops.as2org().same_org(Asn(8048), Asn(6306)));
    }

    #[test]
    fn asns_are_unique() {
        let ops = ops();
        let mut asns: Vec<Asn> = ops.all().iter().map(|o| o.asn).collect();
        let n = asns.len();
        asns.sort();
        asns.dedup();
        assert_eq!(asns.len(), n, "duplicate ASNs in cast");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Operators::generate(42);
        let b = Operators::generate(42);
        assert_eq!(a.all(), b.all());
    }

    #[test]
    fn enterprises_exist_for_ve() {
        let ops = ops();
        let ent = ops.enterprises(country::VE);
        assert!(ent.len() >= 20);
        assert!(ent.iter().all(|e| e.users == 0));
    }
}
