//! Address-space history: the allocation ledger, delegation files, and
//! monthly announced-prefix (pfx2as) snapshots.
//!
//! Calibration (§4, Fig. 2, Fig. 14 / Appendix C):
//!
//! * CANTV dominates Venezuela's space throughout (peaking near 69%
//!   before Telefónica's entry, averaging ≈43%);
//! * Telefónica de Venezuela starts allocating in 2005 and narrows the
//!   gap to ≈11% by 2013;
//! * both stall during 2014–2017, when LACNIC's exhaustion phases cap
//!   allocations at a /22 (the ledger enforces
//!   [`lacnet_registry::ExhaustionPhase`]);
//! * from June 2016 Telefónica *withdraws* roughly half of its announced
//!   /17s (allocation unchanged — a pure visibility event), and in June
//!   2023 the space re-appears as aggregate announcements;
//! * announcements only enter the pfx2as table when valley-free
//!   propagation over that month's topology reaches at least one tier-1
//!   collector.

use crate::economy::Economy;
use crate::operators::{OperatorKind, Operators};
use crate::topology::TopologyBuilder;
use lacnet_bgp::propagation::RouteSim;
use lacnet_bgp::{AsGraph, OriginSet, PfxToAs};
use lacnet_registry::delegation::DelegationFile;
use lacnet_registry::exhaustion::ExhaustionPhase;
use lacnet_registry::ledger::{Allocation, AllocationLedger, PoolCarver};
use lacnet_types::{country, Asn, CountryCode, Date, Ipv4Net, MonthStamp};
use std::collections::BTreeMap;

/// Start of Telefónica's announced-space contraction (Appendix C: "around
/// June 2016, several /17 prefixes … were no longer visible").
pub fn withdrawal_start() -> MonthStamp {
    MonthStamp::new(2016, 6)
}

/// End of the contraction ("many of these address blocks reappeared in
/// June 2023 … as part of larger address blocks").
pub fn withdrawal_end() -> MonthStamp {
    MonthStamp::new(2023, 6)
}

/// The generated address-space history.
#[derive(Debug, Clone)]
pub struct Addressing {
    ledger: AllocationLedger,
    /// Telefónica's /16 allocations, in allocation order — the blocks the
    /// withdrawal policy operates on.
    telefonica_blocks: Vec<Ipv4Net>,
}

impl Addressing {
    /// Generate the full allocation history.
    pub fn generate(ops: &Operators, economy: &Economy) -> Self {
        let mut ledger = AllocationLedger::new();
        let mut telefonica_blocks = Vec::new();

        // One disjoint /8-scale pool per country, by registry order.
        let mut carvers: BTreeMap<CountryCode, PoolCarver> = BTreeMap::new();
        for (i, info) in country::LACNIC_REGION.iter().enumerate() {
            let base = Ipv4Net::truncating(std::net::Ipv4Addr::new(150 + i as u8, 0, 0, 0), 8);
            carvers.insert(info.code, PoolCarver::new(base));
        }

        let alloc = |carvers: &mut BTreeMap<CountryCode, PoolCarver>,
                     ledger: &mut AllocationLedger,
                     cc: CountryCode,
                     asn: Asn,
                     len: u8,
                     when: MonthStamp|
         -> Option<Ipv4Net> {
            let carver = carvers.get_mut(&cc)?;
            let prefix = carver.carve(len).ok()?;
            ledger
                .allocate(Allocation {
                    country: cc,
                    holder: asn,
                    prefix,
                    date: when.first_day(),
                })
                .ok()?;
            Some(prefix)
        };

        // CANTV: a /14 at founding, then a /16 every two years until the
        // exhaustion phases bite.
        alloc(
            &mut carvers,
            &mut ledger,
            country::VE,
            Asn(8048),
            14,
            MonthStamp::new(1996, 1),
        );
        for k in 0..9 {
            let when = MonthStamp::new(1998, 3).plus(k * 24);
            if Self::phase_allows(when, 16) {
                alloc(&mut carvers, &mut ledger, country::VE, Asn(8048), 16, when);
            }
        }
        // Post-exhaustion trickle: /22s at the permitted cadence.
        for k in 0..4 {
            let when = MonthStamp::new(2015, 1).plus(k * 9);
            if Self::phase_allows(when, 22) {
                alloc(&mut carvers, &mut ledger, country::VE, Asn(8048), 22, when);
            }
        }

        // Telefónica de Venezuela: two /16s at its 2005 entry, then one
        // per year while the market grew.
        for k in 0..10 {
            let when = if k < 2 {
                MonthStamp::new(2005, 3).plus(k * 6)
            } else {
                MonthStamp::new(2006, 3).plus((k - 2) * 12)
            };
            if Self::phase_allows(when, 16) {
                if let Some(p) = alloc(&mut carvers, &mut ledger, country::VE, Asn(6306), 16, when)
                {
                    telefonica_blocks.push(p);
                }
            }
        }

        // Remaining Venezuelan operators: blocks sized by market share,
        // at founding plus sparse growth.
        for op in ops.in_country(country::VE) {
            if matches!(op.asn.raw(), 8048 | 6306) {
                continue;
            }
            let when = crate::topology::ve_founding_month(op.asn);
            let len = match op.kind {
                OperatorKind::Enterprise => 22,
                _ if op.users > 2_000_000 => 16,
                _ if op.users > 900_000 => 17,
                _ if op.users > 400_000 => 18,
                _ => 20,
            };
            let len = Self::capped_len(when, len);
            alloc(&mut carvers, &mut ledger, country::VE, op.asn, len, when);
            // One growth block three years in, if policy allows.
            if op.users > 900_000 {
                let later = when.plus(36);
                let len = Self::capped_len(later, len + 1);
                alloc(&mut carvers, &mut ledger, country::VE, op.asn, len, later);
            }
        }

        // The rest of the region: incumbents and ISPs grow with
        // investment; this provides the denominator context for shares
        // and the bulk of the delegation files.
        for info in country::LACNIC_REGION {
            if info.code == country::VE {
                continue;
            }
            for op in ops.in_country(info.code) {
                let when = match op.kind {
                    OperatorKind::Incumbent => MonthStamp::new(1998, 1),
                    OperatorKind::Mobile => MonthStamp::new(2000, 6),
                    _ => MonthStamp::new(2002, 1).plus((op.asn.raw() % 8) as i32 * 24),
                };
                let len = match op.kind {
                    OperatorKind::Incumbent => 14,
                    OperatorKind::Mobile => 16,
                    OperatorKind::Enterprise => 22,
                    OperatorKind::Isp => 17,
                };
                alloc(&mut carvers, &mut ledger, info.code, op.asn, len, when);
                // Growth every four years while the economy invests.
                if op.kind != OperatorKind::Enterprise {
                    for k in 1..6 {
                        let later = when.plus(k * 48);
                        if economy.investment_index(info.code, later) > 0.6 {
                            let len = Self::capped_len(later, len + 2);
                            alloc(&mut carvers, &mut ledger, info.code, op.asn, len, later);
                        }
                    }
                }
            }
        }

        Addressing {
            ledger,
            telefonica_blocks,
        }
    }

    /// Whether the exhaustion phase in force at `when` allows a block of
    /// `len`.
    fn phase_allows(when: MonthStamp, len: u8) -> bool {
        let phase = ExhaustionPhase::at(when.first_day());
        match phase.max_allocation() {
            None => true,
            Some(max) => phase.open_to_existing_members() && (1u64 << (32 - len)) <= max,
        }
    }

    /// Clamp a desired length to what the phase allows (or return the
    /// desired length pre-exhaustion).
    fn capped_len(when: MonthStamp, desired: u8) -> u8 {
        match ExhaustionPhase::at(when.first_day()).max_allocation() {
            None => desired,
            Some(max) => {
                let min_len = 32 - (max.trailing_zeros() as u8);
                desired.max(min_len)
            }
        }
    }

    /// The allocation ledger.
    pub fn ledger(&self) -> &AllocationLedger {
        &self.ledger
    }

    /// The delegation file as published on `cutoff`.
    pub fn delegation_file(&self, cutoff: Date) -> DelegationFile {
        self.ledger.to_delegation_file(cutoff)
    }

    /// Telefónica's /16 blocks, allocation order.
    pub fn telefonica_blocks(&self) -> &[Ipv4Net] {
        &self.telefonica_blocks
    }

    /// The prefixes each origin announces in `month`, before visibility
    /// filtering. Telefónica deaggregates its /16s into /17s and, during
    /// the withdrawal window, pulls the odd-indexed blocks entirely;
    /// after the window the space returns as /16 aggregates.
    pub fn announced_prefixes(&self, month: MonthStamp) -> Vec<(Ipv4Net, Asn)> {
        let cutoff = month.last_day();
        let mut out = Vec::new();
        for a in self.ledger.entries() {
            if a.date > cutoff {
                continue;
            }
            if a.holder == Asn(6306) && self.telefonica_blocks.contains(&a.prefix) {
                let idx = self
                    .telefonica_blocks
                    .iter()
                    .position(|p| *p == a.prefix)
                    .expect("block is in list");
                let withdrawn =
                    idx % 2 == 1 && month >= withdrawal_start() && month < withdrawal_end();
                if withdrawn {
                    continue;
                }
                if month >= withdrawal_end() {
                    // Aggregate announcements after the 2023 return.
                    out.push((a.prefix, a.holder));
                } else {
                    // Historical /17 deaggregation.
                    let (lo, hi) = a.prefix.halves().expect("/16 halves");
                    out.push((lo, a.holder));
                    out.push((hi, a.holder));
                }
            } else {
                out.push((a.prefix, a.holder));
            }
        }
        out
    }

    /// The pfx2as snapshot for `month`: announced prefixes whose origin
    /// reaches at least one tier-1 collector over `graph`.
    pub fn pfx2as_at(&self, month: MonthStamp, graph: &AsGraph) -> PfxToAs {
        let collectors = TopologyBuilder::collectors();
        let sim = RouteSim::new(graph);
        let mut visible: BTreeMap<Asn, bool> = BTreeMap::new();
        let mut table = PfxToAs::new();
        for (prefix, origin) in self.announced_prefixes(month) {
            let seen = *visible.entry(origin).or_insert_with(|| {
                graph.contains(origin) && sim.propagate(origin).visibility(&collectors) > 0.0
            });
            if seen {
                table.insert(prefix, OriginSet::single(origin));
            }
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> (Operators, Economy, Addressing) {
        let ops = Operators::generate(42);
        let eco = Economy::generate(MonthStamp::new(1980, 1), MonthStamp::new(2024, 2));
        let addr = Addressing::generate(&ops, &eco);
        (ops, eco, addr)
    }

    #[test]
    fn cantv_dominates_and_telefonica_narrows() {
        let (_, _, addr) = world();
        let ledger = addr.ledger();
        let total_2004 = ledger.space_of_country(country::VE, Date::ymd(2004, 12, 31));
        let cantv_2004 = ledger.space_of_holder(Asn(8048), Date::ymd(2004, 12, 31));
        assert!(
            cantv_2004 as f64 / total_2004 as f64 > 0.60,
            "pre-Telefónica dominance {}",
            cantv_2004 as f64 / total_2004 as f64
        );
        // By 2014 the gap narrows to ≈11%.
        let cantv = ledger.space_of_holder(Asn(8048), Date::ymd(2014, 1, 1)) as f64;
        let telefonica = ledger.space_of_holder(Asn(6306), Date::ymd(2014, 1, 1)) as f64;
        let gap = (cantv - telefonica) / cantv;
        assert!((0.02..0.25).contains(&gap), "gap {gap}");
        assert!(telefonica < cantv);
    }

    #[test]
    fn exhaustion_stalls_growth() {
        let (_, _, addr) = world();
        let ledger = addr.ledger();
        let at_2014 = ledger.space_of_holder(Asn(8048), Date::ymd(2014, 6, 1));
        let at_2017 = ledger.space_of_holder(Asn(8048), Date::ymd(2017, 1, 1));
        // Only /22 trickles are possible in between.
        assert!(
            at_2017 - at_2014 <= 4 * 1024,
            "grew {} post-exhaustion",
            at_2017 - at_2014
        );
    }

    #[test]
    fn telefonica_withdrawal_window_shrinks_announced_space() {
        let ops = Operators::generate(42);
        let eco = Economy::generate(MonthStamp::new(1980, 1), MonthStamp::new(2024, 2));
        let addr = Addressing::generate(&ops, &eco);
        let builder = TopologyBuilder::new(&ops, &eco);

        let m_pre = MonthStamp::new(2016, 1);
        let m_mid = MonthStamp::new(2019, 1);
        let m_post = MonthStamp::new(2023, 8);
        let pre = addr.pfx2as_at(m_pre, &builder.snapshot(m_pre));
        let mid = addr.pfx2as_at(m_mid, &builder.snapshot(m_mid));
        let post = addr.pfx2as_at(m_post, &builder.snapshot(m_post));

        let space = |t: &PfxToAs| t.address_space_of(Asn(6306));
        assert!(
            space(&mid) < space(&pre),
            "withdrawal shrinks: {} vs {}",
            space(&mid),
            space(&pre)
        );
        assert!(
            space(&post) > space(&mid),
            "2023 return: {} vs {}",
            space(&post),
            space(&mid)
        );
        // Allocated space never shrank: the ledger is unchanged.
        let ledger = addr.ledger();
        assert!(
            ledger.space_of_holder(Asn(6306), Date::ymd(2019, 1, 1))
                >= ledger.space_of_holder(Asn(6306), Date::ymd(2016, 1, 1))
        );
        // Pre-withdrawal announcements are /17 deaggregates; post are /16s.
        assert!(pre.prefixes_of(Asn(6306)).iter().all(|p| p.len() == 17));
        assert!(post.prefixes_of(Asn(6306)).iter().all(|p| p.len() == 16));
    }

    #[test]
    fn delegation_files_roundtrip_and_grow() {
        let (_, _, addr) = world();
        let f2008 = addr.delegation_file(Date::ymd(2008, 1, 1));
        let f2024 = addr.delegation_file(Date::ymd(2024, 1, 1));
        assert!(f2024.records.len() > f2008.records.len());
        let text = f2024.to_text(Date::ymd(2024, 1, 1));
        let back = DelegationFile::parse(&text).unwrap();
        assert_eq!(back.records.len(), f2024.records.len());
        assert_eq!(
            back.ipv4_space(country::VE, Date::ymd(2024, 1, 1)),
            addr.ledger()
                .space_of_country(country::VE, Date::ymd(2024, 1, 1))
        );
    }

    #[test]
    fn pfx2as_origins_are_visible_ases() {
        let ops = Operators::generate(42);
        let eco = Economy::generate(MonthStamp::new(1980, 1), MonthStamp::new(2024, 2));
        let addr = Addressing::generate(&ops, &eco);
        let builder = TopologyBuilder::new(&ops, &eco);
        let m = MonthStamp::new(2020, 6);
        let table = addr.pfx2as_at(m, &builder.snapshot(m));
        assert!(table.len() > 100, "table has {} prefixes", table.len());
        // Every origin in the table exists in the topology.
        let g = builder.snapshot(m);
        for (_, origins) in table.iter() {
            for &asn in origins.asns() {
                assert!(g.contains(asn), "{asn} announced but not in graph");
            }
        }
        // Text roundtrip.
        let back = PfxToAs::parse(&table.to_text()).unwrap();
        assert_eq!(back.len(), table.len());
    }

    #[test]
    fn every_country_has_allocations() {
        let (_, _, addr) = world();
        for info in country::LACNIC_REGION {
            let space = addr
                .ledger()
                .space_of_country(info.code, Date::ymd(2024, 1, 1));
            assert!(space > 0, "{} has no space", info.code);
        }
    }
}
