//! The 2019 Venezuelan blackouts, as probe-reachability data — the
//! study's stated future-work direction (§9 points to outage and
//! shutdown characterisation; §2 and the related work describe the
//! electricity crisis that caused >100-hour supply losses).
//!
//! The generator produces a daily connected-probe series per country.
//! Venezuela's series carries the three documented 2019 events: the
//! nationwide March 7 blackout (≈week), the March 25 relapse, and the
//! July 22 event. Everyone else sees only ordinary churn. The
//! `lacnet-atlas` outage detector recovers the events from the series
//! alone.

use crate::dns::DnsWorld;
use lacnet_atlas::outages::ReachabilitySeries;
use lacnet_types::rng::Rng;
use lacnet_types::{country, CountryCode, Date};
use std::collections::BTreeMap;

/// One scripted blackout: `(first day, last day, fraction of probes cut)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Blackout {
    /// First affected day.
    pub start: Date,
    /// Last affected day, inclusive.
    pub end: Date,
    /// Fraction of the country's probes disconnected, in `(0, 1]`.
    pub depth: f64,
}

/// The documented 2019 Venezuelan events.
pub fn ve_blackouts_2019() -> Vec<Blackout> {
    vec![
        // The nationwide March 7 blackout (Guri failure), ≈ a week.
        Blackout {
            start: Date::ymd(2019, 3, 7),
            end: Date::ymd(2019, 3, 14),
            depth: 0.9,
        },
        // The March 25 relapse.
        Blackout {
            start: Date::ymd(2019, 3, 25),
            end: Date::ymd(2019, 3, 28),
            depth: 0.75,
        },
        // The July 22 event.
        Blackout {
            start: Date::ymd(2019, 7, 22),
            end: Date::ymd(2019, 7, 24),
            depth: 0.7,
        },
    ]
}

/// Generate daily connected-probe series for every LACNIC country over
/// `[start, end]` under the default (Venezuela) scenario. Venezuelan
/// days inside a blackout lose `depth` of the active probes; every day
/// carries ±1-probe churn noise.
pub fn daily_reachability(
    dns: &DnsWorld,
    start: Date,
    end: Date,
    seed: u64,
) -> BTreeMap<CountryCode, ReachabilitySeries> {
    daily_reachability_with(
        dns,
        start,
        end,
        seed,
        &crate::scenario::Scenario::venezuela(),
    )
}

/// [`daily_reachability`] under an explicit scenario: each country's
/// blackout schedule comes from the scenario's overlays, and probe
/// migrations shift active counts across borders from their start day.
/// The per-country RNG fork labels are scenario-independent, so the
/// default scenario reproduces the historical bytes exactly.
pub fn daily_reachability_with(
    dns: &DnsWorld,
    start: Date,
    end: Date,
    seed: u64,
    scenario: &crate::scenario::Scenario,
) -> BTreeMap<CountryCode, ReachabilitySeries> {
    let root = Rng::seeded(seed);
    let mut out: BTreeMap<CountryCode, ReachabilitySeries> = BTreeMap::new();
    for cc in country::lacnic_codes() {
        let blackouts = scenario.blackouts_for(cc);
        let migrations: Vec<_> = scenario
            .probe_migrations
            .iter()
            .filter(|m| m.from == cc || m.to == cc)
            .collect();
        let mut rng = root.fork(&format!("blackouts/{cc}"));
        let mut series = ReachabilitySeries::new();
        let mut day = start;
        while day <= end {
            let mut active = dns.probes.active_in_country(day.month_stamp(), cc).len() as f64;
            // Displacement first: probes that re-homed are counted (and
            // blacked out) where they now live.
            for m in &migrations {
                if day >= m.start {
                    let moved = dns
                        .probes
                        .active_in_country(day.month_stamp(), m.from)
                        .len() as f64
                        * m.fraction;
                    if m.from == cc {
                        active -= moved;
                    } else {
                        active += moved;
                    }
                }
            }
            let mut connected = active.max(0.0);
            if let Some(b) = blackouts.iter().find(|b| day >= b.start && day <= b.end) {
                connected *= 1.0 - b.depth;
            }
            // Ordinary churn: a probe or so flapping either way.
            let noise = rng.range_inclusive(-1, 1) as f64;
            series.insert(day, (connected + noise).max(0.0).round() as u32);
            day = day.plus_days(1);
        }
        out.insert(cc, series);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dns::build_dns_world;
    use lacnet_atlas::outages::{detect, detect_all, DetectorConfig};

    fn world_series() -> BTreeMap<CountryCode, ReachabilitySeries> {
        let dns = build_dns_world(42);
        daily_reachability(&dns, Date::ymd(2019, 1, 1), Date::ymd(2019, 12, 31), 42)
    }

    #[test]
    fn detector_recovers_the_three_events() {
        let series = world_series();
        let events = detect(&series[&country::VE], DetectorConfig::default());
        assert_eq!(events.len(), 3, "{events:#?}");
        // March 7 event: the right week, deep.
        assert_eq!(events[0].start, Date::ymd(2019, 3, 7));
        assert!(events[0].duration_days() >= 7);
        assert!(events[0].depth() > 0.8, "depth {}", events[0].depth());
        // March 25 relapse.
        assert_eq!(events[1].start, Date::ymd(2019, 3, 25));
        // July event.
        assert_eq!(events[2].start.month(), 7);
    }

    #[test]
    fn no_false_positives_elsewhere() {
        let series = world_series();
        let all = detect_all(&series, DetectorConfig::default());
        assert_eq!(
            all.len(),
            1,
            "only Venezuela blacks out: {:?}",
            all.keys().collect::<Vec<_>>()
        );
        assert!(all.contains_key(&country::VE));
    }

    #[test]
    fn baselines_reflect_probe_counts() {
        let series = world_series();
        let ve = &series[&country::VE];
        // Normal January day ≈ the registry's active count (±1 churn).
        let dns = build_dns_world(42);
        let expected = dns
            .probes
            .active_in_country(Date::ymd(2019, 1, 15).month_stamp(), country::VE)
            .len() as i64;
        let got = ve.get(Date::ymd(2019, 1, 15)).unwrap() as i64;
        assert!((got - expected).abs() <= 1, "{got} vs {expected}");
    }

    #[test]
    fn deterministic() {
        let a = world_series();
        let b = world_series();
        for cc in a.keys() {
            assert_eq!(
                a[cc].iter().collect::<Vec<_>>(),
                b[cc].iter().collect::<Vec<_>>()
            );
        }
    }
}
