//! IPv6 adoption (Fig. 5): the Meta per-country request-share dataset.
//!
//! Each country follows a logistic adoption curve parameterised by a
//! ceiling, a midpoint year, and a slope — the standard shape of the real
//! Meta data. Venezuela's curve is crushed by the crisis: near zero until
//! 2021 and only 1.5% by mid-2023. Leaders match the figure: Mexico and
//! Brazil past 40%, Chile surging through 2022, the regional mean rising
//! from under 5% (2018) through ≈11% (early 2021) to ≈20% (2023).

use lacnet_types::{country, CountryCode, MonthStamp, TimeSeries};

/// Logistic parameters: `(country, ceiling %, midpoint year, steepness)`.
const ADOPTION: &[(&str, f64, f64, f64)] = &[
    ("MX", 52.0, 2017.5, 0.55),
    ("BR", 49.0, 2018.5, 0.55),
    ("UY", 42.0, 2018.0, 0.60),
    ("GY", 45.0, 2021.0, 0.90),
    ("PE", 38.0, 2019.5, 0.60),
    ("CL", 34.0, 2022.3, 1.90), // the 2022 surge
    ("CO", 28.0, 2021.0, 0.80),
    ("AR", 24.0, 2020.5, 0.60),
    ("CR", 30.0, 2020.0, 0.70),
    ("GT", 28.0, 2020.5, 0.70),
    ("EC", 22.0, 2021.0, 0.70),
    ("TT", 20.0, 2020.5, 0.60),
    ("DO", 16.0, 2021.0, 0.60),
    ("PA", 16.0, 2021.0, 0.60),
    ("SR", 18.0, 2021.5, 0.70),
    ("GF", 24.0, 2020.0, 0.70),
    ("PY", 14.0, 2021.5, 0.70),
    ("BO", 12.0, 2021.5, 0.60),
    ("SV", 12.0, 2021.5, 0.60),
    ("HN", 10.0, 2022.0, 0.60),
    ("CW", 14.0, 2021.0, 0.60),
    ("AW", 12.0, 2021.0, 0.60),
    ("NI", 7.0, 2022.0, 0.60),
    ("BZ", 6.0, 2022.0, 0.60),
    ("HT", 3.0, 2022.5, 0.50),
    ("CU", 2.0, 2023.0, 0.50),
    ("BQ", 8.0, 2021.5, 0.60),
    ("SX", 8.0, 2021.5, 0.60),
    // Venezuela: the laggard — ≈1.5% by mid-2023, near zero before 2021.
    ("VE", 2.6, 2023.4, 0.80),
];

/// The percentage of requests over IPv6 for `country` at `month`.
pub fn adoption_pct(cc: CountryCode, month: MonthStamp) -> f64 {
    let Some(&(_, cap, mid, k)) = ADOPTION.iter().find(|&&(c, ..)| c == cc.as_str()) else {
        return 0.0;
    };
    let t = month.year() as f64 + (month.month() as f64 - 0.5) / 12.0;
    cap / (1.0 + (-k * (t - mid)).exp())
}

/// Monthly adoption series for one country over `[start, end]`.
pub fn adoption_series(cc: CountryCode, start: MonthStamp, end: MonthStamp) -> TimeSeries {
    start
        .through(end)
        .map(|m| (m, adoption_pct(cc, m)))
        .collect()
}

/// The cross-country mean series (the Fig. 5 regional panel).
pub fn regional_mean_series(start: MonthStamp, end: MonthStamp) -> TimeSeries {
    let series: Vec<TimeSeries> = country::lacnic_codes()
        .map(|cc| adoption_series(cc, start, end))
        .collect();
    let refs: Vec<&TimeSeries> = series.iter().collect();
    lacnet_types::series::mean_of(&refs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn venezuela_is_the_laggard() {
        let ve_2018 = adoption_pct(country::VE, MonthStamp::new(2018, 1));
        assert!(ve_2018 < 0.05, "near-zero in 2018: {ve_2018}");
        let ve_2021 = adoption_pct(country::VE, MonthStamp::new(2021, 1));
        assert!(ve_2021 < 0.5, "still near zero in 2021: {ve_2021}");
        let ve_mid2023 = adoption_pct(country::VE, MonthStamp::new(2023, 7));
        assert!(
            (1.0..=2.0).contains(&ve_mid2023),
            "≈1.5% by mid-2023: {ve_mid2023}"
        );
    }

    #[test]
    fn leaders_match_fig5() {
        let mx = adoption_pct(country::MX, MonthStamp::new(2023, 7));
        let br = adoption_pct(country::BR, MonthStamp::new(2023, 7));
        assert!(mx > 40.0, "MX {mx}");
        assert!(br > 40.0, "BR {br}");
        let ar = adoption_pct(country::AR, MonthStamp::new(2023, 7));
        let cl = adoption_pct(country::CL, MonthStamp::new(2023, 7));
        let co = adoption_pct(country::CO, MonthStamp::new(2023, 7));
        for (name, v) in [("AR", ar), ("CL", cl), ("CO", co)] {
            assert!(
                (15.0..=35.0).contains(&v),
                "{name} around the 20% mark: {v}"
            );
        }
    }

    #[test]
    fn chile_surges_in_2022() {
        let before = adoption_pct(country::CL, MonthStamp::new(2021, 6));
        let after = adoption_pct(country::CL, MonthStamp::new(2023, 1));
        assert!(after > before * 2.0, "CL surge: {before} → {after}");
    }

    #[test]
    fn regional_mean_trajectory() {
        let mean = regional_mean_series(MonthStamp::new(2018, 1), MonthStamp::new(2023, 7));
        let at = |y: i32, m: u8| mean.get(MonthStamp::new(y, m)).unwrap();
        assert!(at(2018, 1) < 5.0, "2018 {}", at(2018, 1));
        assert!((8.0..=14.0).contains(&at(2021, 1)), "2021 {}", at(2021, 1));
        assert!((16.0..=24.0).contains(&at(2023, 7)), "2023 {}", at(2023, 7));
        // Monotone growth.
        let vals: Vec<f64> = mean.iter().map(|(_, v)| v).collect();
        assert!(vals.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn unknown_country_is_zero() {
        assert_eq!(adoption_pct(country::US, MonthStamp::new(2020, 1)), 0.0);
    }

    #[test]
    fn every_lacnic_country_has_a_curve() {
        for cc in country::lacnic_codes() {
            let v = adoption_pct(cc, MonthStamp::new(2023, 1));
            assert!(v > 0.0, "{cc} missing from the adoption table");
            assert!(v < 100.0);
        }
    }
}
