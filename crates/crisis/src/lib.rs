//! # lacnet-crisis
//!
//! The generative world behind the reproduction. Real inputs to the study
//! are gated (multi-terabyte M-Lab archives, licensed Telegeography data,
//! rate-limited RIPE Atlas / PeeringDB APIs), so this crate builds a
//! *world model*: a macro-economy simulator whose investment signal drives
//! per-country infrastructure growth processes, each of which emits its
//! dataset in the native format the corresponding substrate crate parses.
//!
//! Calibration follows the paper's quoted endpoints (oil −81%, GDP −70%,
//! region facilities 180→552 with VE = 4, cables 13→54 with VE +ALBA only,
//! IPv6 region ≈22% vs VE 1.5%, root replicas 59→138 with VE 2→0, VE
//! download < 1 Mbps for a decade then 2.93, GPDNS RTT 36.56 ms vs region
//! 17.74 ms, …); everything between the endpoints emerges from the growth
//! processes. EXPERIMENTS.md records paper-vs-measured for every figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addressing;
pub mod bandwidth;
pub mod blackouts;
pub mod cables;
pub mod cdn;
pub mod config;
pub mod dns;
pub mod economy;
pub mod facilities;
pub mod ipv6;
pub mod operators;
pub mod scenario;
pub mod topology;
pub mod websites;
pub mod world;

pub use config::WorldConfig;
pub use economy::Economy;
pub use scenario::{Scenario, ScenarioError};
pub use world::World;
