//! Config-driven crisis scenarios.
//!
//! The generator historically hard-coded one storyline — Venezuela's
//! macro-economic collapse and its Internet consequences. A [`Scenario`]
//! factors the storyline into data: a TOML sidecar of *overlays* applied
//! on top of the historical record (GDP anchor overrides, blackout
//! schedules, cable failure dates, NDT traffic shifts, transit
//! withdrawals, IXP buildouts, probe migrations).
//!
//! **The byte-identity contract.** [`Scenario::venezuela`] is the
//! built-in default and carries exactly the values the generator used to
//! hard-code (today, the three documented 2019 blackout events — every
//! other overlay list empty, because the rest of the storyline *is* the
//! historical record). A world generated under the default scenario is
//! byte-identical to the pre-scenario generator: identical archives,
//! identical golden fixtures, identical manifest fingerprints. Only a
//! non-default scenario perturbs any output.
//!
//! Scenarios are identified by a fingerprint — the FNV-1a hash of the
//! canonical [`Scenario::to_toml`] serialisation — which the dump layer
//! folds into every NDT shard fingerprint (and writes as a
//! `world/scenario.toml` sidecar) *only* when the scenario is
//! non-default, so switching scenarios rewrites every shard while
//! default trees keep their historical bytes.

use crate::blackouts::Blackout;
use lacnet_types::json::Json;
use lacnet_types::{codec, toml, Asn, CountryCode, Date, MonthStamp};
use std::fmt;
use std::fmt::Write as _;

/// A scenario failed to load, parse or validate. Every variant is a
/// diagnosable condition — scenario files are hand-edited, so the error
/// names the key or value at fault rather than panicking.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The scenario file could not be read.
    Read {
        /// Path we tried to read.
        path: String,
        /// The I/O error text.
        detail: String,
    },
    /// The sidecar is not valid TOML (per the `lacnet_types::toml`
    /// subset).
    Toml(lacnet_types::Error),
    /// A table carries a key the schema does not define.
    UnknownKey {
        /// The offending key, qualified by its table.
        key: String,
    },
    /// A known key holds a value of the wrong shape or range.
    BadValue {
        /// The offending key, qualified by its table.
        key: String,
        /// What was wrong with it.
        detail: String,
    },
    /// A name passed to [`Scenario::builtin`] is not a built-in.
    UnknownBuiltin {
        /// The requested name.
        name: String,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Read { path, detail } => {
                write!(f, "cannot read scenario file {path}: {detail}")
            }
            ScenarioError::Toml(e) => write!(f, "scenario sidecar is not valid TOML: {e}"),
            ScenarioError::UnknownKey { key } => {
                write!(f, "scenario sidecar has unknown key `{key}`")
            }
            ScenarioError::BadValue { key, detail } => {
                write!(f, "scenario key `{key}`: {detail}")
            }
            ScenarioError::UnknownBuiltin { name } => write!(
                f,
                "unknown scenario `{name}` (built-ins: {}; or pass a .toml path)",
                Scenario::builtin_names().join(", ")
            ),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<ScenarioError> for lacnet_types::Error {
    fn from(e: ScenarioError) -> Self {
        lacnet_types::Error::parse("valid scenario sidecar", &e.to_string())
    }
}

/// A submarine cable failing: the named system goes out of service on
/// `failure` day.
#[derive(Debug, Clone, PartialEq)]
pub struct CableFailure {
    /// System name, matching the cable table (e.g. `"ALBA-1"`).
    pub cable: String,
    /// First day out of service.
    pub failure: Date,
}

/// A month-windowed multiplier on one country's NDT test volume,
/// applied on top of the config's per-country scale.
#[derive(Debug, Clone, PartialEq)]
pub struct MlabAdjustment {
    /// Affected country.
    pub country: CountryCode,
    /// First month the factor applies.
    pub start: MonthStamp,
    /// Last month, inclusive (`None` = open-ended).
    pub end: Option<MonthStamp>,
    /// Volume multiplier inside the window.
    pub factor: f64,
}

/// A transit provider withdrawing from the focal incumbent: the
/// provider's historical interval is truncated to end in `end`.
#[derive(Debug, Clone, PartialEq)]
pub struct TransitWithdrawal {
    /// The withdrawing provider.
    pub provider: Asn,
    /// First month the provider is gone.
    pub end: MonthStamp,
}

/// A new IXP opening — a buildout-recovery overlay appended to the
/// PeeringDB ix table from its opening month.
#[derive(Debug, Clone, PartialEq)]
pub struct IxpBuildout {
    /// Host country.
    pub country: CountryCode,
    /// Exchange name.
    pub name: String,
    /// Host city.
    pub city: String,
    /// First month the exchange exists.
    pub open: MonthStamp,
    /// Eyeball user share the membership greedily covers, in `(0, 1]`.
    pub target_share: f64,
}

/// A displacement event: a fraction of one country's Atlas probes
/// re-homing to another country from a given day.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeMigration {
    /// Country losing probes.
    pub from: CountryCode,
    /// Country gaining them.
    pub to: CountryCode,
    /// First day the migration shows in reachability counts.
    pub start: Date,
    /// Fraction of the origin country's active probes that move, in
    /// `(0, 1]`.
    pub fraction: f64,
}

/// One crisis storyline, as data. See the module docs for the
/// byte-identity contract the default scenario honours.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Short scenario name (used in routes and fingerprint displays).
    pub name: String,
    /// One-line human description.
    pub description: String,
    /// Per-country GDP anchor overrides `(country, [(year, usd)])`,
    /// replacing the historical anchors before monthly resampling.
    pub gdp_anchors: Vec<(CountryCode, Vec<(i32, f64)>)>,
    /// Per-country scripted blackout schedules.
    pub blackouts: Vec<(CountryCode, Vec<Blackout>)>,
    /// Cable systems gaining failure dates.
    pub cable_failures: Vec<CableFailure>,
    /// Month-windowed NDT volume multipliers.
    pub mlab_adjustments: Vec<MlabAdjustment>,
    /// Transit providers leaving the focal incumbent early.
    pub transit_withdrawals: Vec<TransitWithdrawal>,
    /// New exchanges opening.
    pub ixp_buildouts: Vec<IxpBuildout>,
    /// Cross-border probe migrations.
    pub probe_migrations: Vec<ProbeMigration>,
}

/// The built-in scenario sidecars, embedded so every binary can run any
/// of them with no files on disk. The committed files under `scenarios/`
/// are the source of truth; `Scenario::venezuela()` is unit-tested equal
/// to its parsed file.
const BUILTINS: &[(&str, &str)] = &[
    (
        "venezuela",
        include_str!(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../scenarios/venezuela.toml"
        )),
    ),
    (
        "sudden-displacement",
        include_str!(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../scenarios/sudden-displacement.toml"
        )),
    ),
    (
        "cable-cut",
        include_str!(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../scenarios/cable-cut.toml"
        )),
    ),
    (
        "transit-withdrawal",
        include_str!(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../scenarios/transit-withdrawal.toml"
        )),
    ),
];

impl Scenario {
    /// The built-in default: the paper's Venezuela storyline. Carries
    /// exactly what the generator used to hard-code — the three 2019
    /// blackout events — and nothing else, so worlds generated under it
    /// are byte-identical to the pre-scenario generator.
    pub fn venezuela() -> Scenario {
        Scenario {
            name: "venezuela".into(),
            description: "The paper's storyline: Venezuela's decade-long crisis, \
                          with the three documented 2019 blackouts"
                .into(),
            gdp_anchors: Vec::new(),
            blackouts: vec![(
                lacnet_types::country::VE,
                crate::blackouts::ve_blackouts_2019(),
            )],
            cable_failures: Vec::new(),
            mlab_adjustments: Vec::new(),
            transit_withdrawals: Vec::new(),
            ixp_buildouts: Vec::new(),
            probe_migrations: Vec::new(),
        }
    }

    /// Whether this is the default (Venezuela) scenario — the gate on
    /// every byte-visible scenario artefact (sidecar files, fingerprint
    /// suffixes).
    pub fn is_default(&self) -> bool {
        *self == Scenario::venezuela()
    }

    /// Names of the built-in scenarios, in registry order.
    pub fn builtin_names() -> Vec<&'static str> {
        BUILTINS.iter().map(|&(name, _)| name).collect()
    }

    /// Load a built-in scenario by name.
    pub fn builtin(name: &str) -> Result<Scenario, ScenarioError> {
        let (_, text) = BUILTINS
            .iter()
            .find(|&&(n, _)| n == name)
            .ok_or_else(|| ScenarioError::UnknownBuiltin { name: name.into() })?;
        Scenario::parse(text)
    }

    /// Resolve a `--scenario` argument: a built-in name, or a path to a
    /// sidecar file.
    pub fn load(spec: &str) -> Result<Scenario, ScenarioError> {
        if BUILTINS.iter().any(|&(n, _)| n == spec) {
            return Scenario::builtin(spec);
        }
        let text = std::fs::read_to_string(spec).map_err(|e| {
            if spec.ends_with(".toml") || spec.contains('/') {
                ScenarioError::Read {
                    path: spec.into(),
                    detail: e.to_string(),
                }
            } else {
                ScenarioError::UnknownBuiltin { name: spec.into() }
            }
        })?;
        Scenario::parse(&text)
    }

    /// The scenario fingerprint: FNV-1a over the canonical serialisation.
    /// Two scenarios fingerprint equal iff they carry the same data.
    pub fn fingerprint(&self) -> u64 {
        codec::fnv1a64(self.to_toml().as_bytes())
    }

    /// Blackout schedule for `cc` (empty when the scenario scripts none).
    pub fn blackouts_for(&self, cc: CountryCode) -> &[Blackout] {
        self.blackouts
            .iter()
            .find(|(c, _)| *c == cc)
            .map(|(_, events)| events.as_slice())
            .unwrap_or(&[])
    }

    /// GDP anchor override for `cc`, if the scenario rewrites it.
    pub fn gdp_override(&self, cc: CountryCode) -> Option<&[(i32, f64)]> {
        self.gdp_anchors
            .iter()
            .find(|(c, _)| *c == cc)
            .map(|(_, anchors)| anchors.as_slice())
    }

    /// The NDT volume multiplier for `(cc, month)`: the product of every
    /// matching adjustment window (1.0 when none match — multiplying a
    /// scale by 1.0 is IEEE-exact, so untouched shards keep their bytes).
    pub fn mlab_factor(&self, cc: CountryCode, month: MonthStamp) -> f64 {
        let mut factor = 1.0;
        for adj in &self.mlab_adjustments {
            if adj.country == cc && adj.start <= month && adj.end.is_none_or(|e| month <= e) {
                factor *= adj.factor;
            }
        }
        factor
    }

    /// The month a scenario withdraws `provider` from the focal
    /// incumbent's transit menu, if it does.
    pub fn withdrawal_end(&self, provider: Asn) -> Option<MonthStamp> {
        self.transit_withdrawals
            .iter()
            .find(|w| w.provider == provider)
            .map(|w| w.end)
    }

    /// Parse a scenario sidecar. Typed errors, never panics: unknown
    /// keys, malformed values and bad ranges each name the key at fault.
    pub fn parse(text: &str) -> Result<Scenario, ScenarioError> {
        let doc = toml::parse(text).map_err(ScenarioError::Toml)?;
        let Json::Obj(pairs) = &doc else {
            unreachable!("toml::parse returns an object");
        };
        let mut scenario = Scenario {
            name: String::new(),
            description: String::new(),
            gdp_anchors: Vec::new(),
            blackouts: Vec::new(),
            cable_failures: Vec::new(),
            mlab_adjustments: Vec::new(),
            transit_withdrawals: Vec::new(),
            ixp_buildouts: Vec::new(),
            probe_migrations: Vec::new(),
        };
        for (key, value) in pairs {
            match key.as_str() {
                "name" => scenario.name = req_str(value, "name")?,
                "description" => scenario.description = req_str(value, "description")?,
                "gdp_anchors" => {
                    for entry in tables(value, "gdp_anchors")? {
                        check_keys(entry, "gdp_anchors", &["country", "anchors"])?;
                        let cc = country(entry, "gdp_anchors.country")?;
                        let anchors = entry
                            .get("anchors")
                            .and_then(Json::as_array)
                            .ok_or_else(|| bad("gdp_anchors.anchors", "expected [[year, usd]]"))?
                            .iter()
                            .map(|pair| {
                                let xs = pair.as_array().filter(|xs| xs.len() == 2).ok_or_else(
                                    || bad("gdp_anchors.anchors", "expected [year, usd] pairs"),
                                )?;
                                let year = xs[0].as_f64().ok_or_else(|| {
                                    bad("gdp_anchors.anchors", "year must be a number")
                                })?;
                                let usd = xs[1].as_f64().ok_or_else(|| {
                                    bad("gdp_anchors.anchors", "usd must be a number")
                                })?;
                                Ok((year as i32, usd))
                            })
                            .collect::<Result<Vec<_>, ScenarioError>>()?;
                        if anchors.len() < 2 {
                            return Err(bad("gdp_anchors.anchors", "need at least two anchors"));
                        }
                        scenario.gdp_anchors.push((cc, anchors));
                    }
                }
                "blackouts" => {
                    for entry in tables(value, "blackouts")? {
                        check_keys(entry, "blackouts", &["country", "events"])?;
                        let cc = country(entry, "blackouts.country")?;
                        let events = entry
                            .get("events")
                            .and_then(Json::as_array)
                            .ok_or_else(|| {
                                bad("blackouts.events", "expected [[start, end, depth]]")
                            })?
                            .iter()
                            .map(|event| {
                                let xs = event.as_array().filter(|xs| xs.len() == 3).ok_or_else(
                                    || bad("blackouts.events", "expected [start, end, depth]"),
                                )?;
                                let start = date(&xs[0], "blackouts.events start")?;
                                let end = date(&xs[1], "blackouts.events end")?;
                                let depth = xs[2].as_f64().ok_or_else(|| {
                                    bad("blackouts.events", "depth must be a number")
                                })?;
                                if !(0.0..=1.0).contains(&depth) {
                                    return Err(bad("blackouts.events", "depth must be in [0, 1]"));
                                }
                                if end < start {
                                    return Err(bad("blackouts.events", "end before start"));
                                }
                                Ok(Blackout { start, end, depth })
                            })
                            .collect::<Result<Vec<_>, ScenarioError>>()?;
                        scenario.blackouts.push((cc, events));
                    }
                }
                "cable_failures" => {
                    for entry in tables(value, "cable_failures")? {
                        check_keys(entry, "cable_failures", &["cable", "failure"])?;
                        scenario.cable_failures.push(CableFailure {
                            cable: req_str(
                                entry.get("cable").unwrap_or(&Json::Null),
                                "cable_failures.cable",
                            )?,
                            failure: date(
                                entry.get("failure").unwrap_or(&Json::Null),
                                "cable_failures.failure",
                            )?,
                        });
                    }
                }
                "mlab" => {
                    for entry in tables(value, "mlab")? {
                        check_keys(entry, "mlab", &["country", "start", "end", "factor"])?;
                        let factor = entry
                            .get("factor")
                            .and_then(Json::as_f64)
                            .ok_or_else(|| bad("mlab.factor", "must be a number"))?;
                        if factor <= 0.0 || factor.is_nan() {
                            return Err(bad("mlab.factor", "must be positive"));
                        }
                        scenario.mlab_adjustments.push(MlabAdjustment {
                            country: country(entry, "mlab.country")?,
                            start: month(entry.get("start").unwrap_or(&Json::Null), "mlab.start")?,
                            end: match entry.get("end") {
                                None => None,
                                Some(v) => Some(month(v, "mlab.end")?),
                            },
                            factor,
                        });
                    }
                }
                "transit_withdrawals" => {
                    for entry in tables(value, "transit_withdrawals")? {
                        check_keys(entry, "transit_withdrawals", &["provider", "end"])?;
                        let provider = entry
                            .get("provider")
                            .and_then(Json::as_f64)
                            .filter(|&n| n >= 1.0 && n.fract() == 0.0)
                            .ok_or_else(|| {
                                bad("transit_withdrawals.provider", "must be an ASN number")
                            })?;
                        scenario.transit_withdrawals.push(TransitWithdrawal {
                            provider: Asn(provider as u32),
                            end: month(
                                entry.get("end").unwrap_or(&Json::Null),
                                "transit_withdrawals.end",
                            )?,
                        });
                    }
                }
                "ixp_buildouts" => {
                    for entry in tables(value, "ixp_buildouts")? {
                        check_keys(
                            entry,
                            "ixp_buildouts",
                            &["country", "name", "city", "open", "target_share"],
                        )?;
                        let target_share = entry
                            .get("target_share")
                            .and_then(Json::as_f64)
                            .ok_or_else(|| bad("ixp_buildouts.target_share", "must be a number"))?;
                        if !(target_share > 0.0 && target_share <= 1.0) {
                            return Err(bad("ixp_buildouts.target_share", "must be in (0, 1]"));
                        }
                        scenario.ixp_buildouts.push(IxpBuildout {
                            country: country(entry, "ixp_buildouts.country")?,
                            name: req_str(
                                entry.get("name").unwrap_or(&Json::Null),
                                "ixp_buildouts.name",
                            )?,
                            city: req_str(
                                entry.get("city").unwrap_or(&Json::Null),
                                "ixp_buildouts.city",
                            )?,
                            open: month(
                                entry.get("open").unwrap_or(&Json::Null),
                                "ixp_buildouts.open",
                            )?,
                            target_share,
                        });
                    }
                }
                "probe_migrations" => {
                    for entry in tables(value, "probe_migrations")? {
                        check_keys(
                            entry,
                            "probe_migrations",
                            &["from", "to", "start", "fraction"],
                        )?;
                        let fraction = entry
                            .get("fraction")
                            .and_then(Json::as_f64)
                            .ok_or_else(|| bad("probe_migrations.fraction", "must be a number"))?;
                        if !(fraction > 0.0 && fraction <= 1.0) {
                            return Err(bad("probe_migrations.fraction", "must be in (0, 1]"));
                        }
                        scenario.probe_migrations.push(ProbeMigration {
                            from: cc_value(
                                entry.get("from").unwrap_or(&Json::Null),
                                "probe_migrations.from",
                            )?,
                            to: cc_value(
                                entry.get("to").unwrap_or(&Json::Null),
                                "probe_migrations.to",
                            )?,
                            start: date(
                                entry.get("start").unwrap_or(&Json::Null),
                                "probe_migrations.start",
                            )?,
                            fraction,
                        });
                    }
                }
                other => {
                    return Err(ScenarioError::UnknownKey { key: other.into() });
                }
            }
        }
        if scenario.name.is_empty() {
            return Err(bad("name", "required and non-empty"));
        }
        Ok(scenario)
    }

    /// Canonical TOML serialisation: `parse(to_toml(s)) == s` exactly
    /// (floats use Rust's shortest-roundtrip formatting). This is the
    /// fingerprint input and what the dump layer writes as the archive
    /// sidecar.
    pub fn to_toml(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# lacnet scenario sidecar");
        let _ = writeln!(out, "name = {}", toml::escape(&self.name));
        let _ = writeln!(out, "description = {}", toml::escape(&self.description));
        for (cc, anchors) in &self.gdp_anchors {
            let _ = writeln!(out, "\n[[gdp_anchors]]");
            let _ = writeln!(out, "country = \"{cc}\"");
            let pairs: Vec<String> = anchors
                .iter()
                .map(|(year, usd)| format!("[{year}, {usd}]"))
                .collect();
            let _ = writeln!(out, "anchors = [{}]", pairs.join(", "));
        }
        for (cc, events) in &self.blackouts {
            let _ = writeln!(out, "\n[[blackouts]]");
            let _ = writeln!(out, "country = \"{cc}\"");
            let items: Vec<String> = events
                .iter()
                .map(|b| format!("[\"{}\", \"{}\", {}]", b.start, b.end, b.depth))
                .collect();
            let _ = writeln!(out, "events = [{}]", items.join(", "));
        }
        for f in &self.cable_failures {
            let _ = writeln!(out, "\n[[cable_failures]]");
            let _ = writeln!(out, "cable = {}", toml::escape(&f.cable));
            let _ = writeln!(out, "failure = \"{}\"", f.failure);
        }
        for adj in &self.mlab_adjustments {
            let _ = writeln!(out, "\n[[mlab]]");
            let _ = writeln!(out, "country = \"{}\"", adj.country);
            let _ = writeln!(out, "start = \"{}\"", adj.start);
            if let Some(end) = adj.end {
                let _ = writeln!(out, "end = \"{end}\"");
            }
            let _ = writeln!(out, "factor = {}", adj.factor);
        }
        for w in &self.transit_withdrawals {
            let _ = writeln!(out, "\n[[transit_withdrawals]]");
            let _ = writeln!(out, "provider = {}", w.provider.0);
            let _ = writeln!(out, "end = \"{}\"", w.end);
        }
        for ixp in &self.ixp_buildouts {
            let _ = writeln!(out, "\n[[ixp_buildouts]]");
            let _ = writeln!(out, "country = \"{}\"", ixp.country);
            let _ = writeln!(out, "name = {}", toml::escape(&ixp.name));
            let _ = writeln!(out, "city = {}", toml::escape(&ixp.city));
            let _ = writeln!(out, "open = \"{}\"", ixp.open);
            let _ = writeln!(out, "target_share = {}", ixp.target_share);
        }
        for m in &self.probe_migrations {
            let _ = writeln!(out, "\n[[probe_migrations]]");
            let _ = writeln!(out, "from = \"{}\"", m.from);
            let _ = writeln!(out, "to = \"{}\"", m.to);
            let _ = writeln!(out, "start = \"{}\"", m.start);
            let _ = writeln!(out, "fraction = {}", m.fraction);
        }
        out
    }
}

fn bad(key: &str, detail: &str) -> ScenarioError {
    ScenarioError::BadValue {
        key: key.into(),
        detail: detail.into(),
    }
}

fn req_str(v: &Json, key: &str) -> Result<String, ScenarioError> {
    v.as_str()
        .filter(|s| !s.is_empty())
        .map(str::to_owned)
        .ok_or_else(|| bad(key, "must be a non-empty string"))
}

fn tables<'a>(v: &'a Json, key: &str) -> Result<&'a [Json], ScenarioError> {
    v.as_array()
        .ok_or_else(|| bad(key, "must be an array of tables ([[...]])"))
}

fn check_keys(entry: &Json, table: &str, allowed: &[&str]) -> Result<(), ScenarioError> {
    let Json::Obj(pairs) = entry else {
        return Err(bad(table, "each entry must be a table"));
    };
    for (key, _) in pairs {
        if !allowed.contains(&key.as_str()) {
            return Err(ScenarioError::UnknownKey {
                key: format!("{table}.{key}"),
            });
        }
    }
    Ok(())
}

fn cc_value(v: &Json, key: &str) -> Result<CountryCode, ScenarioError> {
    let cc = v
        .as_str()
        .ok_or_else(|| bad(key, "must be an ISO alpha-2 string"))
        .and_then(|s| CountryCode::new(s).map_err(|e| bad(key, &e.to_string())))?;
    if !lacnet_types::country::in_lacnic(cc) {
        return Err(bad(key, "must be a LACNIC-region country"));
    }
    Ok(cc)
}

fn country(entry: &Json, key: &str) -> Result<CountryCode, ScenarioError> {
    cc_value(entry.get("country").unwrap_or(&Json::Null), key)
}

fn date(v: &Json, key: &str) -> Result<Date, ScenarioError> {
    v.as_str()
        .ok_or_else(|| bad(key, "must be a YYYY-MM-DD string"))
        .and_then(|s| s.parse::<Date>().map_err(|e| bad(key, &e.to_string())))
}

fn month(v: &Json, key: &str) -> Result<MonthStamp, ScenarioError> {
    v.as_str()
        .ok_or_else(|| bad(key, "must be a YYYY-MM string"))
        .and_then(|s| {
            s.parse::<MonthStamp>()
                .map_err(|e| bad(key, &e.to_string()))
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lacnet_types::country;

    #[test]
    fn builtin_venezuela_equals_the_coded_default() {
        let parsed = Scenario::builtin("venezuela").unwrap();
        assert_eq!(parsed, Scenario::venezuela());
        assert!(parsed.is_default());
        assert_eq!(
            parsed.blackouts_for(country::VE),
            crate::blackouts::ve_blackouts_2019().as_slice()
        );
        assert!(parsed.blackouts_for(country::BR).is_empty());
    }

    #[test]
    fn every_builtin_parses_and_fingerprints_uniquely() {
        let mut fingerprints = std::collections::BTreeSet::new();
        for name in Scenario::builtin_names() {
            let s = Scenario::builtin(name).unwrap();
            assert_eq!(s.name, name, "sidecar name matches registry name");
            assert!(
                fingerprints.insert(s.fingerprint()),
                "{name} fingerprint collides"
            );
            assert_eq!(name == "venezuela", s.is_default(), "{name}");
        }
        assert_eq!(fingerprints.len(), 4);
    }

    #[test]
    fn canonical_serialisation_round_trips_exactly() {
        for name in Scenario::builtin_names() {
            let s = Scenario::builtin(name).unwrap();
            let back = Scenario::parse(&s.to_toml()).unwrap();
            assert_eq!(back, s, "{name} round-trip");
            assert_eq!(back.fingerprint(), s.fingerprint());
        }
    }

    #[test]
    fn load_resolves_builtins_paths_and_rejects_unknowns() {
        assert_eq!(
            Scenario::load("cable-cut").unwrap(),
            Scenario::builtin("cable-cut").unwrap()
        );
        let dir = std::env::temp_dir().join(format!("lacnet-scn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("custom.toml");
        std::fs::write(&path, Scenario::venezuela().to_toml()).unwrap();
        let loaded = Scenario::load(path.to_str().unwrap()).unwrap();
        assert!(loaded.is_default());
        std::fs::remove_dir_all(&dir).ok();
        assert!(matches!(
            Scenario::load("atlantis"),
            Err(ScenarioError::UnknownBuiltin { .. })
        ));
        assert!(matches!(
            Scenario::load("/no/such/dir/scn.toml"),
            Err(ScenarioError::Read { .. })
        ));
        assert!(matches!(
            Scenario::builtin("atlantis"),
            Err(ScenarioError::UnknownBuiltin { .. })
        ));
    }

    // One unit test per failure mode of the typed-error satellite.

    #[test]
    fn malformed_toml_is_a_toml_error() {
        assert!(matches!(
            Scenario::parse("name = \n"),
            Err(ScenarioError::Toml(_))
        ));
    }

    #[test]
    fn unknown_top_level_key_is_rejected() {
        assert!(matches!(
            Scenario::parse("name = \"x\"\nsurprise = 1\n"),
            Err(ScenarioError::UnknownKey { key }) if key == "surprise"
        ));
    }

    #[test]
    fn unknown_table_key_is_rejected_with_its_table() {
        let text = "name = \"x\"\n[[mlab]]\ncountry = \"VE\"\nstart = \"2019-01\"\nfactor = 1.5\nbogus = 1\n";
        assert!(matches!(
            Scenario::parse(text),
            Err(ScenarioError::UnknownKey { key }) if key == "mlab.bogus"
        ));
    }

    #[test]
    fn bad_values_name_the_key() {
        for (text, key) in [
            ("description = \"no name\"\n", "name"),
            ("name = \"x\"\n[[mlab]]\ncountry = \"XX\"\nstart = \"2019-01\"\nfactor = 2\n", "mlab.country"),
            ("name = \"x\"\n[[mlab]]\ncountry = \"VE\"\nstart = \"soon\"\nfactor = 2\n", "mlab.start"),
            ("name = \"x\"\n[[mlab]]\ncountry = \"VE\"\nstart = \"2019-01\"\nfactor = -2\n", "mlab.factor"),
            ("name = \"x\"\n[[blackouts]]\ncountry = \"VE\"\nevents = [[\"2019-03-07\", \"2019-03-14\", 1.5]]\n", "blackouts.events"),
            ("name = \"x\"\n[[blackouts]]\ncountry = \"VE\"\nevents = [[\"2019-03-14\", \"2019-03-07\", 0.5]]\n", "blackouts.events"),
            ("name = \"x\"\n[[cable_failures]]\ncable = \"ALBA-1\"\nfailure = \"2019-13-01\"\n", "cable_failures.failure"),
            ("name = \"x\"\n[[transit_withdrawals]]\nprovider = \"Telefonica\"\nend = \"2016-06\"\n", "transit_withdrawals.provider"),
            ("name = \"x\"\n[[ixp_buildouts]]\ncountry = \"VE\"\nname = \"IXP\"\ncity = \"Caracas\"\nopen = \"2021-06\"\ntarget_share = 2.0\n", "ixp_buildouts.target_share"),
            ("name = \"x\"\n[[probe_migrations]]\nfrom = \"VE\"\nto = \"CO\"\nstart = \"2019-01-15\"\nfraction = 0.0\n", "probe_migrations.fraction"),
            ("name = \"x\"\n[[gdp_anchors]]\ncountry = \"VE\"\nanchors = [[1980, 7800]]\n", "gdp_anchors.anchors"),
        ] {
            match Scenario::parse(text) {
                Err(ScenarioError::BadValue { key: k, .. }) => {
                    assert_eq!(k, key, "wrong key for {text:?}")
                }
                other => panic!("{text:?} should be BadValue({key}), got {other:?}"),
            }
        }
    }

    #[test]
    fn overlay_lookups_answer_the_generators() {
        let s = Scenario::builtin("cable-cut").unwrap();
        assert!(!s.cable_failures.is_empty());
        let t = Scenario::builtin("transit-withdrawal").unwrap();
        assert!(t.withdrawal_end(Asn(6762)).is_some());
        assert!(t.withdrawal_end(Asn(64512)).is_none());
        let d = Scenario::builtin("sudden-displacement").unwrap();
        assert!(!d.probe_migrations.is_empty());
        let ve = country::VE;
        let factor = d.mlab_factor(ve, MonthStamp::new(2019, 6));
        assert!(factor < 1.0, "displacement shrinks VE volume: {factor}");
        assert_eq!(d.mlab_factor(ve, MonthStamp::new(2010, 1)), 1.0);
        assert_eq!(
            Scenario::venezuela().mlab_factor(ve, MonthStamp::new(2019, 6)),
            1.0
        );
    }
}
