//! The macro-economy model (Fig. 1, Fig. 13, and the investment signal).
//!
//! Each series is an anchor-point curve (piecewise log-linear between
//! calendar-year anchors) resampled monthly. Venezuela's anchors encode
//! the crisis: oil production collapsing ≈81% from its peak, GDP per
//! capita ≈71%, population ≈14%, and inflation peaking at 32,000% — the
//! four annotations of Fig. 1. Other countries get IMF-plausible growth
//! paths including the 2004–2013 commodity boom, which is what makes
//! Venezuela's *rank* collapse in Fig. 13 visible.
//!
//! The derived [`Economy::investment_index`] — current GDP per capita over
//! its historical peak — is the signal every infrastructure growth process
//! in this crate consumes.

use lacnet_types::{CountryCode, MonthStamp, TimeSeries};
use std::collections::BTreeMap;

/// GDP-per-capita anchors `(year, usd)` per country. Countries without
/// IMF coverage in the paper's sources (small Caribbean territories and
/// Cuba) are excluded from rank computations.
struct GdpAnchors {
    cc: &'static str,
    imf_data: bool,
    anchors: &'static [(i32, f64)],
}

const GDP_TABLE: &[GdpAnchors] = &[
    GdpAnchors {
        cc: "AR",
        imf_data: true,
        anchors: &[
            (1980, 8400.0),
            (1985, 7000.0),
            (1990, 5800.0),
            (1995, 7200.0),
            (2002, 3000.0),
            (2008, 9000.0),
            (2015, 13800.0),
            (2020, 8500.0),
            (2024, 13000.0),
        ],
    },
    GdpAnchors {
        cc: "BO",
        imf_data: true,
        anchors: &[
            (1980, 1200.0),
            (1995, 900.0),
            (2005, 1000.0),
            (2015, 3000.0),
            (2024, 3700.0),
        ],
    },
    GdpAnchors {
        cc: "BQ",
        imf_data: false,
        anchors: &[(1980, 12000.0), (2024, 27000.0)],
    },
    GdpAnchors {
        cc: "BR",
        imf_data: true,
        anchors: &[
            (1980, 3200.0),
            (1995, 4700.0),
            (2005, 4800.0),
            (2011, 13200.0),
            (2015, 8800.0),
            (2024, 10300.0),
        ],
    },
    GdpAnchors {
        cc: "BZ",
        imf_data: true,
        anchors: &[
            (1980, 2200.0),
            (1995, 2900.0),
            (2005, 3900.0),
            (2015, 4800.0),
            (2024, 6800.0),
        ],
    },
    GdpAnchors {
        cc: "CL",
        imf_data: true,
        anchors: &[
            (1980, 2600.0),
            (1995, 5100.0),
            (2005, 7600.0),
            (2013, 15800.0),
            (2020, 13000.0),
            (2024, 17000.0),
        ],
    },
    GdpAnchors {
        cc: "CO",
        imf_data: true,
        anchors: &[
            (1980, 1600.0),
            (1995, 2500.0),
            (2005, 3400.0),
            (2014, 8100.0),
            (2020, 5300.0),
            (2024, 7400.0),
        ],
    },
    GdpAnchors {
        cc: "CR",
        imf_data: true,
        anchors: &[
            (1980, 2400.0),
            (1995, 3300.0),
            (2005, 4700.0),
            (2015, 11600.0),
            (2024, 16600.0),
        ],
    },
    GdpAnchors {
        cc: "CU",
        imf_data: false,
        anchors: &[(1980, 2000.0), (2005, 3800.0), (2024, 9500.0)],
    },
    GdpAnchors {
        cc: "CW",
        imf_data: false,
        anchors: &[(1980, 10000.0), (2024, 20000.0)],
    },
    GdpAnchors {
        cc: "DO",
        imf_data: true,
        anchors: &[
            (1980, 1200.0),
            (1995, 1800.0),
            (2005, 3700.0),
            (2015, 6800.0),
            (2024, 10800.0),
        ],
    },
    GdpAnchors {
        cc: "EC",
        imf_data: true,
        anchors: &[
            (1980, 1700.0),
            (1995, 2200.0),
            (2005, 3000.0),
            (2015, 6100.0),
            (2024, 6500.0),
        ],
    },
    GdpAnchors {
        cc: "GF",
        imf_data: false,
        anchors: &[(1980, 6000.0), (2024, 18000.0)],
    },
    GdpAnchors {
        cc: "GT",
        imf_data: true,
        anchors: &[
            (1980, 1200.0),
            (1995, 1500.0),
            (2005, 2100.0),
            (2015, 3900.0),
            (2024, 5700.0),
        ],
    },
    GdpAnchors {
        cc: "GY",
        imf_data: true,
        anchors: &[
            (1980, 800.0),
            (1995, 900.0),
            (2005, 1100.0),
            (2015, 4100.0),
            (2019, 6600.0),
            (2024, 20000.0),
        ],
    },
    GdpAnchors {
        cc: "HN",
        imf_data: true,
        anchors: &[
            (1980, 1000.0),
            (1995, 1100.0),
            (2005, 1400.0),
            (2015, 2300.0),
            (2024, 3200.0),
        ],
    },
    GdpAnchors {
        cc: "HT",
        imf_data: true,
        anchors: &[
            (1980, 600.0),
            (1995, 500.0),
            (2005, 600.0),
            (2015, 1400.0),
            (2024, 1700.0),
        ],
    },
    GdpAnchors {
        cc: "MX",
        imf_data: true,
        anchors: &[
            (1980, 3700.0),
            (1995, 4000.0),
            (2005, 8300.0),
            (2015, 9600.0),
            (2024, 13800.0),
        ],
    },
    GdpAnchors {
        cc: "NI",
        imf_data: true,
        anchors: &[
            (1980, 700.0),
            (1995, 900.0),
            (2005, 1200.0),
            (2015, 2100.0),
            (2024, 2500.0),
        ],
    },
    GdpAnchors {
        cc: "PA",
        imf_data: true,
        anchors: &[
            (1980, 2200.0),
            (1995, 3200.0),
            (2005, 4800.0),
            (2015, 13600.0),
            (2024, 18500.0),
        ],
    },
    GdpAnchors {
        cc: "PE",
        imf_data: true,
        anchors: &[
            (1980, 1000.0),
            (1995, 2100.0),
            (2005, 2900.0),
            (2015, 6200.0),
            (2024, 7900.0),
        ],
    },
    GdpAnchors {
        cc: "PY",
        imf_data: true,
        anchors: &[
            (1980, 1600.0),
            (1995, 1900.0),
            (2005, 1700.0),
            (2015, 5400.0),
            (2024, 6400.0),
        ],
    },
    GdpAnchors {
        cc: "SR",
        imf_data: true,
        anchors: &[
            (1980, 3000.0),
            (1995, 2000.0),
            (2005, 3300.0),
            (2015, 8800.0),
            (2024, 7000.0),
        ],
    },
    GdpAnchors {
        cc: "SV",
        imf_data: true,
        anchors: &[
            (1980, 900.0),
            (1995, 1700.0),
            (2005, 2900.0),
            (2015, 4200.0),
            (2024, 5400.0),
        ],
    },
    GdpAnchors {
        cc: "SX",
        imf_data: false,
        anchors: &[(1980, 15000.0), (2024, 32000.0)],
    },
    GdpAnchors {
        cc: "TT",
        imf_data: true,
        anchors: &[
            (1980, 8000.0),
            (1985, 5200.0),
            (1995, 4000.0),
            (2008, 16000.0),
            (2015, 18200.0),
            (2024, 18200.0),
        ],
    },
    GdpAnchors {
        cc: "UY",
        imf_data: true,
        anchors: &[
            (1980, 4300.0),
            (1995, 5500.0),
            (2003, 3600.0),
            (2014, 16800.0),
            (2024, 22800.0),
        ],
    },
    GdpAnchors {
        cc: "VE",
        imf_data: true,
        anchors: &[
            (1980, 7800.0),
            (1985, 6800.0),
            (1990, 5800.0),
            (1995, 5000.0),
            (2003, 5200.0),
            (2008, 10800.0),
            (2012, 12200.0),
            (2016, 8000.0),
            (2020, 3550.0),
            (2024, 3900.0),
        ],
    },
    GdpAnchors {
        cc: "AW",
        imf_data: false,
        anchors: &[(1980, 8000.0), (2024, 33000.0)],
    },
];

/// Venezuela's oil production anchors, in the kbbl/day-scaled units of
/// Fig. 1a (peak ≈ 185,000; −81.49% collapse to ≈ 34,000).
const VE_OIL_ANCHORS: &[(i32, f64)] = &[
    (1980, 130_000.0),
    (1985, 100_000.0),
    (1990, 125_000.0),
    (1998, 175_000.0),
    (2003, 150_000.0),
    (2008, 185_000.0),
    (2013, 180_000.0),
    (2016, 140_000.0),
    (2018, 85_000.0),
    (2021, 34_000.0),
    (2024, 45_000.0),
];

/// Venezuela's population anchors, millions (−13.85% from the 2014 peak).
const VE_POP_ANCHORS: &[(i32, f64)] = &[
    (1980, 15.0),
    (1990, 19.8),
    (2000, 24.4),
    (2010, 28.4),
    (2014, 30.0),
    (2017, 28.8),
    (2021, 25.85),
    (2024, 26.2),
];

/// Venezuela's annual inflation anchors, percent (peaking at 32,000%).
const VE_INFLATION_ANCHORS: &[(i32, f64)] = &[
    (1980, 20.0),
    (1989, 84.0),
    (1996, 100.0),
    (2001, 12.0),
    (2008, 30.0),
    (2013, 40.0),
    (2015, 180.0),
    (2017, 1_500.0),
    (2019, 32_000.0),
    (2020, 2_400.0),
    (2022, 200.0),
    (2024, 180.0),
];

fn anchors_to_series(
    anchors: &[(i32, f64)],
    start: MonthStamp,
    end: MonthStamp,
    log: bool,
) -> TimeSeries {
    let pts: TimeSeries = anchors
        .iter()
        .map(|&(y, v)| (MonthStamp::new(y, 1), if log { v.ln() } else { v }))
        .collect();
    let s = pts.resample_monthly(start, end);
    if log {
        s.map(f64::exp)
    } else {
        s
    }
}

/// The generated macro-economy.
#[derive(Debug, Clone)]
pub struct Economy {
    start: MonthStamp,
    end: MonthStamp,
    gdp: BTreeMap<CountryCode, TimeSeries>,
    oil_ve: TimeSeries,
    pop_ve: TimeSeries,
    inflation_ve: TimeSeries,
    imf_covered: Vec<CountryCode>,
}

impl Economy {
    /// Build the economy over `[start, end]` from the historical record.
    pub fn generate(start: MonthStamp, end: MonthStamp) -> Self {
        Self::generate_with(start, end, &[])
    }

    /// Build the economy with scenario GDP overrides: each
    /// `(country, anchors)` pair replaces that country's historical
    /// anchor set before monthly resampling. An empty slice (the default
    /// scenario) reproduces [`Economy::generate`] exactly.
    pub fn generate_with(
        start: MonthStamp,
        end: MonthStamp,
        overrides: &[(CountryCode, Vec<(i32, f64)>)],
    ) -> Self {
        let mut gdp = BTreeMap::new();
        let mut imf_covered = Vec::new();
        for row in GDP_TABLE {
            let cc = CountryCode::of(row.cc);
            let anchors = overrides
                .iter()
                .find(|(c, _)| *c == cc)
                .map(|(_, a)| a.as_slice())
                .unwrap_or(row.anchors);
            gdp.insert(cc, anchors_to_series(anchors, start, end, true));
            if row.imf_data {
                imf_covered.push(cc);
            }
        }
        Economy {
            start,
            end,
            gdp,
            oil_ve: anchors_to_series(VE_OIL_ANCHORS, start, end, false),
            pop_ve: anchors_to_series(VE_POP_ANCHORS, start, end, false),
            inflation_ve: anchors_to_series(VE_INFLATION_ANCHORS, start, end, true),
            imf_covered,
        }
    }

    /// Window covered.
    pub fn window(&self) -> (MonthStamp, MonthStamp) {
        (self.start, self.end)
    }

    /// Venezuela's oil production series (Fig. 1a).
    pub fn oil_production_ve(&self) -> &TimeSeries {
        &self.oil_ve
    }

    /// Venezuela's population series, millions (Fig. 1d).
    pub fn population_ve(&self) -> &TimeSeries {
        &self.pop_ve
    }

    /// Venezuela's annual inflation series, percent (Fig. 1c).
    pub fn inflation_ve(&self) -> &TimeSeries {
        &self.inflation_ve
    }

    /// GDP per capita series for `country` (Fig. 1b for VE, Fig. 13 for
    /// the region).
    pub fn gdp_per_capita(&self, country: CountryCode) -> Option<&TimeSeries> {
        self.gdp.get(&country)
    }

    /// Countries with IMF-style coverage (the Fig. 13 rank universe).
    pub fn imf_countries(&self) -> &[CountryCode] {
        &self.imf_covered
    }

    /// 1-based GDP-per-capita rank of `country` among IMF-covered
    /// countries at `month` (1 = richest).
    pub fn gdp_rank(&self, country: CountryCode, month: MonthStamp) -> Option<usize> {
        let mine = self.gdp.get(&country)?.get(month)?;
        if !self.imf_covered.contains(&country) {
            return None;
        }
        let better = self
            .imf_covered
            .iter()
            .filter(|&&cc| cc != country)
            .filter_map(|cc| self.gdp[cc].get(month))
            .filter(|&v| v > mine)
            .count();
        Some(better + 1)
    }

    /// The investment signal driving infrastructure growth: current GDP
    /// per capita divided by its historical peak up to `month`, in
    /// `(0, 1]`. Healthy growing economies sit near 1; Venezuela falls
    /// toward 0.3 after 2013.
    pub fn investment_index(&self, country: CountryCode, month: MonthStamp) -> f64 {
        let Some(series) = self.gdp.get(&country) else {
            return 1.0;
        };
        let Some(current) = series.get(month) else {
            return 1.0;
        };
        let peak = series
            .window(self.start, month)
            .max_value()
            .unwrap_or(current);
        if peak <= 0.0 {
            return 1.0;
        }
        (current / peak).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lacnet_types::country;

    fn economy() -> Economy {
        Economy::generate(MonthStamp::new(1980, 1), MonthStamp::new(2024, 2))
    }

    #[test]
    fn fig1_annotations_reproduce() {
        let e = economy();
        // Oil: −81.49% from peak in the paper; anchors give ≈ −81.6% at
        // the 2021 trough, and the *latest* value reflects the mild
        // recovery. Check the trough-style collapse.
        let oil = e.oil_production_ve();
        let peak = oil.max_value().unwrap();
        let trough = oil
            .window(MonthStamp::new(2020, 1), MonthStamp::new(2022, 1))
            .min_value()
            .unwrap();
        let drop = (trough - peak) / peak * 100.0;
        assert!((-84.0..=-78.0).contains(&drop), "oil collapse {drop}%");

        // GDP: −70.90% from peak.
        let gdp = e.gdp_per_capita(country::VE).unwrap();
        let drop = (gdp
            .window(MonthStamp::new(2019, 1), MonthStamp::new(2021, 1))
            .min_value()
            .unwrap()
            - gdp.max_value().unwrap())
            / gdp.max_value().unwrap()
            * 100.0;
        assert!((-73.0..=-68.0).contains(&drop), "gdp collapse {drop}%");

        // Population: −13.85% from peak.
        let pop = e.population_ve();
        let drop = (pop
            .window(MonthStamp::new(2021, 1), MonthStamp::new(2022, 1))
            .min_value()
            .unwrap()
            - pop.max_value().unwrap())
            / pop.max_value().unwrap()
            * 100.0;
        assert!(
            (-15.0..=-12.5).contains(&drop),
            "population decline {drop}%"
        );

        // Inflation peaks at 32,000%.
        let peak = e.inflation_ve().max_value().unwrap();
        assert!(
            (30_000.0..=33_000.0).contains(&peak),
            "inflation peak {peak}"
        );
    }

    #[test]
    fn fig13_rank_trajectory() {
        let e = economy();
        // 1980: third wealthiest (behind Argentina and Trinidad & Tobago).
        let r1980 = e.gdp_rank(country::VE, MonthStamp::new(1980, 1)).unwrap();
        assert_eq!(r1980, 3, "1980 rank");
        // 1985: climbed to second.
        let r1985 = e.gdp_rank(country::VE, MonthStamp::new(1985, 1)).unwrap();
        assert!(r1985 <= 3, "1985 rank {r1985}");
        // 1990–2010: mid-pack (paper: oscillating 6th–9th).
        let r2005 = e.gdp_rank(country::VE, MonthStamp::new(2005, 1)).unwrap();
        assert!((3..=10).contains(&r2005), "2005 rank {r2005}");
        // Collapse: ≈18th by 2015, ≈23rd by 2020 in a 29-country universe;
        // ours has 23 IMF-covered countries, so check VE fell to the
        // bottom quartile.
        let n = e.imf_countries().len();
        let r2020 = e.gdp_rank(country::VE, MonthStamp::new(2020, 1)).unwrap();
        assert!(r2020 >= n - 5, "2020 rank {r2020} of {n}");
        assert!(r2020 > r2005 + 8, "rank collapsed");
    }

    #[test]
    fn investment_index_shapes() {
        let e = economy();
        // Pre-crisis Venezuela invests near its peak.
        let pre = e.investment_index(country::VE, MonthStamp::new(2012, 6));
        assert!(pre > 0.9, "pre-crisis {pre}");
        // Post-collapse it falls toward 0.3.
        let post = e.investment_index(country::VE, MonthStamp::new(2020, 6));
        assert!((0.25..0.40).contains(&post), "post-crisis {post}");
        // A steadily growing economy stays near 1.
        let cl = e.investment_index(country::CL, MonthStamp::new(2020, 6));
        assert!(cl > 0.75, "chile {cl}");
        // Unknown countries default to 1.
        assert_eq!(
            e.investment_index(country::US, MonthStamp::new(2020, 6)),
            1.0
        );
    }

    #[test]
    fn series_cover_window_monthly() {
        let e = economy();
        let gdp = e.gdp_per_capita(country::VE).unwrap();
        assert_eq!(
            gdp.len(),
            MonthStamp::new(1980, 1)
                .through(MonthStamp::new(2024, 2))
                .count()
        );
        assert!(gdp.iter().all(|(_, v)| v > 0.0));
        assert!(e.inflation_ve().iter().all(|(_, v)| v > 0.0));
    }

    #[test]
    fn rank_universe_excludes_non_imf() {
        let e = economy();
        assert!(e
            .gdp_rank(CountryCode::of("CW"), MonthStamp::new(2000, 1))
            .is_none());
        assert!(e.imf_countries().len() >= 20);
        // Ranks are within the universe size.
        for cc in e.imf_countries() {
            let r = e.gdp_rank(*cc, MonthStamp::new(2010, 1)).unwrap();
            assert!((1..=e.imf_countries().len()).contains(&r));
        }
    }
}
