//! Bandwidth evolution (Fig. 11): the M-Lab NDT archive.
//!
//! Per-country median download targets follow anchor curves (log-linear
//! between anchors) calibrated to the paper's quotes: Venezuela stagnates
//! below 1 Mbit/s from 2010 to late 2021 and recovers to 2.93 Mbit/s by
//! July 2023, when Uruguay reaches 47.33, Brazil 32.44, Chile 25.25,
//! Mexico 18.66 and Argentina 15.48. The historical equivalences hold
//! too (Uruguay and Mexico pass 2.93 around November 2013, Chile around
//! June 2017, Argentina in April 2018, Brazil in September 2019), and the
//! normalised panel falls from ≈0.9 to ≈0.2 of the regional mean.
//!
//! The actual *rows* are produced by [`lacnet_mlab::SpeedSampler`] around
//! these targets — the pipeline then re-estimates the medians from the
//! rows, exactly as the paper reduces 447M tests.

use crate::operators::Operators;
use lacnet_mlab::aggregate::{Mode, MonthlyAggregator};
use lacnet_mlab::multi::MultiAggregator;
use lacnet_mlab::{NdtTest, SpeedSampler};
use lacnet_types::rng::Rng;
use lacnet_types::{country, sweep, CountryCode, MonthStamp, TimeSeries};

/// Median download anchors `(country, [(year, month, mbps)])`.
/// `(country, anchor points)` where each anchor is `(year, month, Mbps)`.
type SpeedAnchors = (&'static str, &'static [(i32, u8, f64)]);

#[allow(clippy::type_complexity)]
const ANCHORS: &[SpeedAnchors] = &[
    (
        "VE",
        &[
            (2007, 7, 0.45),
            (2010, 1, 0.80),
            (2013, 1, 0.85),
            (2016, 1, 0.62),
            (2019, 1, 0.55),
            (2021, 10, 0.95),
            (2023, 7, 2.93),
            (2024, 2, 3.1),
        ],
    ),
    (
        "UY",
        &[
            (2007, 7, 0.70),
            (2013, 11, 2.93),
            (2017, 1, 11.0),
            (2020, 1, 28.0),
            (2023, 7, 47.33),
            (2024, 2, 49.0),
        ],
    ),
    (
        "MX",
        &[
            (2007, 7, 0.80),
            (2013, 11, 2.93),
            (2017, 1, 6.5),
            (2020, 1, 11.0),
            (2023, 7, 18.66),
            (2024, 2, 19.5),
        ],
    ),
    (
        "CL",
        &[
            (2007, 7, 0.60),
            (2013, 1, 1.7),
            (2017, 6, 2.93),
            (2020, 1, 11.0),
            (2023, 7, 25.25),
            (2024, 2, 26.5),
        ],
    ),
    (
        "AR",
        &[
            (2007, 7, 0.50),
            (2013, 1, 1.5),
            (2018, 4, 2.93),
            (2020, 6, 7.0),
            (2023, 7, 15.48),
            (2024, 2, 16.2),
        ],
    ),
    (
        "BR",
        &[
            (2007, 7, 0.45),
            (2013, 1, 1.1),
            (2019, 9, 2.93),
            (2021, 6, 11.0),
            (2023, 7, 32.44),
            (2024, 2, 34.0),
        ],
    ),
    (
        "CO",
        &[
            (2007, 7, 0.50),
            (2013, 1, 1.3),
            (2018, 1, 3.5),
            (2021, 1, 7.5),
            (2023, 7, 14.0),
            (2024, 2, 15.0),
        ],
    ),
    (
        "CR",
        &[
            (2007, 7, 0.60),
            (2013, 1, 1.8),
            (2018, 1, 5.0),
            (2021, 1, 11.0),
            (2023, 7, 20.0),
            (2024, 2, 21.0),
        ],
    ),
    (
        "PA",
        &[
            (2007, 7, 0.55),
            (2013, 1, 1.8),
            (2018, 1, 5.5),
            (2021, 1, 11.0),
            (2023, 7, 18.0),
            (2024, 2, 19.0),
        ],
    ),
    (
        "PE",
        &[
            (2007, 7, 0.40),
            (2013, 1, 1.0),
            (2018, 1, 3.5),
            (2021, 1, 7.0),
            (2023, 7, 13.0),
            (2024, 2, 14.0),
        ],
    ),
    (
        "EC",
        &[
            (2007, 7, 0.35),
            (2013, 1, 1.0),
            (2018, 1, 3.0),
            (2021, 1, 7.0),
            (2023, 7, 12.0),
            (2024, 2, 13.0),
        ],
    ),
    (
        "DO",
        &[
            (2007, 7, 0.40),
            (2013, 1, 1.1),
            (2018, 1, 3.2),
            (2021, 1, 6.5),
            (2023, 7, 12.0),
            (2024, 2, 13.0),
        ],
    ),
    (
        "TT",
        &[
            (2007, 7, 0.60),
            (2013, 1, 1.9),
            (2018, 1, 5.0),
            (2021, 1, 9.0),
            (2023, 7, 15.0),
            (2024, 2, 16.0),
        ],
    ),
    (
        "PY",
        &[
            (2007, 7, 0.30),
            (2013, 1, 0.9),
            (2018, 1, 2.8),
            (2021, 1, 7.0),
            (2023, 7, 14.0),
            (2024, 2, 15.0),
        ],
    ),
    (
        "GT",
        &[
            (2007, 7, 0.30),
            (2013, 1, 0.8),
            (2018, 1, 2.2),
            (2021, 1, 4.5),
            (2023, 7, 8.0),
            (2024, 2, 8.5),
        ],
    ),
    (
        "BO",
        &[
            (2007, 7, 0.20),
            (2013, 1, 0.6),
            (2018, 1, 1.6),
            (2021, 1, 3.5),
            (2023, 7, 6.5),
            (2024, 2, 7.0),
        ],
    ),
    (
        "SV",
        &[
            (2007, 7, 0.30),
            (2013, 1, 0.8),
            (2018, 1, 2.2),
            (2021, 1, 4.5),
            (2023, 7, 8.5),
            (2024, 2, 9.0),
        ],
    ),
    (
        "HN",
        &[
            (2007, 7, 0.25),
            (2013, 1, 0.7),
            (2018, 1, 1.8),
            (2021, 1, 3.5),
            (2023, 7, 6.0),
            (2024, 2, 6.5),
        ],
    ),
    (
        "NI",
        &[
            (2007, 7, 0.20),
            (2013, 1, 0.6),
            (2018, 1, 1.5),
            (2021, 1, 3.0),
            (2023, 7, 5.0),
            (2024, 2, 5.5),
        ],
    ),
    (
        "HT",
        &[
            (2007, 7, 0.15),
            (2013, 1, 0.4),
            (2018, 1, 0.9),
            (2021, 1, 1.5),
            (2023, 7, 2.2),
            (2024, 2, 2.4),
        ],
    ),
    (
        "CU",
        &[
            (2007, 7, 0.10),
            (2013, 1, 0.3),
            (2018, 1, 0.7),
            (2021, 1, 1.1),
            (2023, 7, 1.6),
            (2024, 2, 1.8),
        ],
    ),
    (
        "GY",
        &[
            (2007, 7, 0.25),
            (2013, 1, 0.7),
            (2018, 1, 2.0),
            (2021, 1, 5.0),
            (2023, 7, 12.0),
            (2024, 2, 14.0),
        ],
    ),
    (
        "SR",
        &[
            (2007, 7, 0.30),
            (2013, 1, 0.8),
            (2018, 1, 2.5),
            (2021, 1, 5.5),
            (2023, 7, 10.0),
            (2024, 2, 11.0),
        ],
    ),
    (
        "GF",
        &[
            (2007, 7, 0.70),
            (2013, 1, 2.2),
            (2018, 1, 6.0),
            (2021, 1, 12.0),
            (2023, 7, 20.0),
            (2024, 2, 21.0),
        ],
    ),
    (
        "CW",
        &[
            (2007, 7, 0.80),
            (2013, 1, 2.6),
            (2018, 1, 8.0),
            (2021, 1, 15.0),
            (2023, 7, 25.0),
            (2024, 2, 26.0),
        ],
    ),
    (
        "AW",
        &[
            (2007, 7, 0.80),
            (2013, 1, 2.6),
            (2018, 1, 8.0),
            (2021, 1, 15.0),
            (2023, 7, 25.0),
            (2024, 2, 26.0),
        ],
    ),
    (
        "BQ",
        &[
            (2007, 7, 0.70),
            (2013, 1, 2.2),
            (2018, 1, 6.5),
            (2021, 1, 12.0),
            (2023, 7, 20.0),
            (2024, 2, 21.0),
        ],
    ),
    (
        "SX",
        &[
            (2007, 7, 0.75),
            (2013, 1, 2.4),
            (2018, 1, 7.0),
            (2021, 1, 13.0),
            (2023, 7, 22.0),
            (2024, 2, 23.0),
        ],
    ),
    (
        "BZ",
        &[
            (2007, 7, 0.25),
            (2013, 1, 0.7),
            (2018, 1, 1.9),
            (2021, 1, 4.0),
            (2023, 7, 7.0),
            (2024, 2, 7.5),
        ],
    ),
];

/// The paper's aggregate volumes, scaled: monthly expected NDT tests per
/// country at `mlab_volume_scale == 1.0` (≈1/1000 of the real archive).
fn monthly_volume(cc: CountryCode) -> f64 {
    match cc.as_str() {
        "BR" => 900.0,
        "MX" => 280.0,
        "AR" => 260.0,
        "CL" => 180.0,
        "CO" => 190.0,
        "VE" => 100.0, // ≈3.9M real tests over ~200 months, /1000 ≈ 20; boosted for estimator stability
        "PE" | "EC" | "UY" | "CR" | "DO" | "PA" => 80.0,
        _ => 30.0,
    }
}

/// The target median download for `country` at `month`, Mbit/s.
pub fn median_target(cc: CountryCode, month: MonthStamp) -> f64 {
    let Some(&(_, anchors)) = ANCHORS.iter().find(|&&(c, _)| c == cc.as_str()) else {
        return 0.0;
    };
    let pts: TimeSeries = anchors
        .iter()
        .map(|&(y, m, v)| (MonthStamp::new(y, m), v.ln()))
        .collect();
    pts.resample_monthly(month, month)
        .get(month)
        .map(f64::exp)
        .unwrap_or(0.0)
}

/// The target series over a window.
pub fn target_series(cc: CountryCode, start: MonthStamp, end: MonthStamp) -> TimeSeries {
    start
        .through(end)
        .map(|m| (m, median_target(cc, m)))
        .collect()
}

/// Generate one country-month of NDT rows, attributed to the incumbent
/// (the aggregate view the Fig. 11 reduction uses).
pub fn generate_month(
    ops: &Operators,
    cc: CountryCode,
    month: MonthStamp,
    scale: f64,
    rng: &mut Rng,
) -> Vec<NdtTest> {
    let median = median_target(cc, month);
    if median <= 0.0 {
        return Vec::new();
    }
    let asn = ops
        .incumbent(cc)
        .map(|o| o.asn)
        .unwrap_or(lacnet_types::Asn(0));
    let sampler = SpeedSampler::default();
    sampler.generate_month(cc, asn, month, median, monthly_volume(cc) * scale, rng)
}

/// The per-network speed multiplier against the country median — §7.1's
/// intra-Venezuela story: CANTV's copper plant drags below the median
/// while the fibre entrants (Airtek, Fibex, Thundernet, Viginet) run
/// several times above it once they appear, which is what lifts the
/// country median after late 2021.
pub fn network_speed_factor(cc: CountryCode, asn: lacnet_types::Asn, month: MonthStamp) -> f64 {
    if cc != country::VE {
        return 1.0;
    }
    match asn.raw() {
        8048 => {
            // CANTV: below the median throughout; the 2022 fibre plans
            // reach only East Caracas and barely move its median.
            if month >= MonthStamp::new(2022, 1) {
                0.75
            } else {
                0.65
            }
        }
        21826 => 1.3,                            // Telemic/Inter: cable, above median
        6306 => 1.1,                             // Telefónica
        264731 => 1.2,                           // Digitel (mobile broadband)
        61461 | 264628 | 263703 | 272809 => 3.0, // the fibre entrants
        11562 => 1.4,                            // NetUno cable
        _ => 0.9,                                // the small-access tail
    }
}

/// Generate one country-month of NDT rows spread across the country's
/// eyeball networks: test volume proportional to users, each network's
/// median at `country median × network factor`.
pub fn generate_month_by_network(
    ops: &Operators,
    cc: CountryCode,
    month: MonthStamp,
    scale: f64,
    rng: &mut Rng,
) -> Vec<NdtTest> {
    let country_median = median_target(cc, month);
    if country_median <= 0.0 {
        return Vec::new();
    }
    let sampler = SpeedSampler::default();
    let eyeballs = ops.eyeballs(cc);
    let total_users: u64 = eyeballs.iter().map(|o| o.users).sum();
    if total_users == 0 {
        return Vec::new();
    }
    let volume = monthly_volume(cc) * scale;
    let mut out = Vec::new();
    for op in eyeballs {
        // Networks not yet founded produce no tests.
        if cc == country::VE && month < crate::topology::ve_founding_month(op.asn) {
            continue;
        }
        let share = op.users as f64 / total_users as f64;
        let median = country_median * network_speed_factor(cc, op.asn, month);
        out.extend(sampler.generate_month(cc, op.asn, month, median, volume * share, rng));
    }
    out
}

/// One unit of the sharded NDT build: a `(country, month)` cell of the
/// archive. [`shard_plan`] fixes the order the merge step follows.
pub type NdtShard = (CountryCode, MonthStamp);

/// The full shard plan for a window: every LACNIC country crossed with
/// every month of `[start, end]`, countries in registry order, months
/// ascending within a country. Both the serial reference and the parallel
/// build reduce shards in exactly this order — the streaming P² estimator
/// is order-sensitive, so a fixed merge order is what makes the output
/// byte-identical regardless of worker count.
pub fn shard_plan(start: MonthStamp, end: MonthStamp) -> Vec<NdtShard> {
    let mut plan = Vec::new();
    for cc in country::lacnic_codes() {
        for m in start.through(end) {
            plan.push((cc, m));
        }
    }
    plan
}

/// Generate one shard of aggregate-view rows. Every shard owns an
/// independent RNG substream derived from `(seed, country, month)`, so a
/// shard's bytes depend on neither the worker that runs it nor the order
/// shards are claimed in.
pub fn generate_shard(ops: &Operators, seed: u64, scale: f64, shard: NdtShard) -> Vec<NdtTest> {
    let (cc, month) = shard;
    let mut rng = Rng::seeded(seed).fork(&format!("mlab/{cc}/{month}"));
    generate_month(ops, cc, month, scale, &mut rng)
}

/// Generate one shard of per-network rows (the `multi` archive view),
/// under the same independent-substream contract as [`generate_shard`].
pub fn generate_network_shard(
    ops: &Operators,
    seed: u64,
    scale: f64,
    shard: NdtShard,
) -> Vec<NdtTest> {
    let (cc, month) = shard;
    let mut rng = Rng::seeded(seed).fork(&format!("mlab-net/{cc}/{month}"));
    generate_month_by_network(ops, cc, month, scale, &mut rng)
}

/// Generate the full archive into a streaming aggregator (the analysis
/// half never sees the targets, only the rows). Shards are generated on
/// [`lacnet_types::sweep`] workers and merged in [`shard_plan`] order.
pub fn build_aggregate(
    ops: &Operators,
    seed: u64,
    scale: f64,
    start: MonthStamp,
    end: MonthStamp,
) -> MonthlyAggregator {
    let plan = shard_plan(start, end);
    build_aggregate_with_workers(
        sweep::worker_count(plan.len()),
        ops,
        seed,
        scale,
        start,
        end,
    )
}

/// [`build_aggregate`] under a full [`crate::config::WorldConfig`]: each
/// shard's volume is the config's *effective* per-country scale
/// ([`crate::config::WorldConfig::mlab_scale_for`]), so the per-country
/// boost knob reaches the in-memory aggregate and the dumped shard set
/// identically. With the knob unset this is exactly [`build_aggregate`].
pub fn build_aggregate_config(
    ops: &Operators,
    config: &crate::config::WorldConfig,
    start: MonthStamp,
    end: MonthStamp,
) -> MonthlyAggregator {
    build_aggregate_scenario(
        ops,
        config,
        &crate::scenario::Scenario::venezuela(),
        start,
        end,
    )
}

/// [`build_aggregate_config`] under an explicit scenario: each shard's
/// volume is the config's effective scale times the scenario's per-month
/// M-Lab factor ([`crate::scenario::Scenario::mlab_factor`]). The default
/// scenario's factor is exactly `1.0` for every cell, so its aggregate is
/// byte-identical to [`build_aggregate_config`].
pub fn build_aggregate_scenario(
    ops: &Operators,
    config: &crate::config::WorldConfig,
    scenario: &crate::scenario::Scenario,
    start: MonthStamp,
    end: MonthStamp,
) -> MonthlyAggregator {
    let plan = shard_plan(start, end);
    let batches = sweep::parallel_map_with(sweep::worker_count(plan.len()), &plan, |&s| {
        let scale = config.mlab_scale_for(s.0) * scenario.mlab_factor(s.0, s.1);
        generate_shard(ops, config.seed, scale, s)
    });
    let mut agg = MonthlyAggregator::new(Mode::Streaming);
    for batch in &batches {
        agg.observe_all(batch);
    }
    agg
}

/// [`build_aggregate`] with an explicit worker count — the
/// shard-invariance tests drive 1, 2 and 7 and assert byte-identical
/// medians.
pub fn build_aggregate_with_workers(
    workers: usize,
    ops: &Operators,
    seed: u64,
    scale: f64,
    start: MonthStamp,
    end: MonthStamp,
) -> MonthlyAggregator {
    let plan = shard_plan(start, end);
    let batches =
        sweep::parallel_map_with(workers, &plan, |&s| generate_shard(ops, seed, scale, s));
    let mut agg = MonthlyAggregator::new(Mode::Streaming);
    for batch in &batches {
        agg.observe_all(batch);
    }
    agg
}

/// The serial reference [`build_aggregate`] is byte-checked against: one
/// thread, shards reduced in plan order.
pub fn build_aggregate_serial(
    ops: &Operators,
    seed: u64,
    scale: f64,
    start: MonthStamp,
    end: MonthStamp,
) -> MonthlyAggregator {
    let mut agg = MonthlyAggregator::new(Mode::Streaming);
    for &shard in &shard_plan(start, end) {
        agg.observe_all(&generate_shard(ops, seed, scale, shard));
    }
    agg
}

/// Render the NDT archive as TSV text: shards generated on sweep workers,
/// concatenated in [`shard_plan`] order. Byte-identical to
/// [`build_archive_serial`] for any worker count.
pub fn build_archive(
    ops: &Operators,
    seed: u64,
    scale: f64,
    start: MonthStamp,
    end: MonthStamp,
) -> String {
    let plan = shard_plan(start, end);
    build_archive_with_workers(
        sweep::worker_count(plan.len()),
        ops,
        seed,
        scale,
        start,
        end,
    )
}

/// [`build_archive`] with an explicit worker count.
pub fn build_archive_with_workers(
    workers: usize,
    ops: &Operators,
    seed: u64,
    scale: f64,
    start: MonthStamp,
    end: MonthStamp,
) -> String {
    let plan = shard_plan(start, end);
    let shards = sweep::parallel_map_with(workers, &plan, |&s| {
        let mut text = String::new();
        for test in generate_shard(ops, seed, scale, s) {
            text.push_str(&test.to_row());
            text.push('\n');
        }
        text
    });
    shards.concat()
}

/// The serial reference [`build_archive`] is byte-checked against.
pub fn build_archive_serial(
    ops: &Operators,
    seed: u64,
    scale: f64,
    start: MonthStamp,
    end: MonthStamp,
) -> String {
    let mut text = String::new();
    for &shard in &shard_plan(start, end) {
        for test in generate_shard(ops, seed, scale, shard) {
            text.push_str(&test.to_row());
            text.push('\n');
        }
    }
    text
}

/// Build the per-network `multi` archive view into a by-ASN aggregator,
/// sharded the same way as [`build_aggregate`].
pub fn build_multi_aggregate(
    ops: &Operators,
    seed: u64,
    scale: f64,
    start: MonthStamp,
    end: MonthStamp,
) -> MultiAggregator {
    let plan = shard_plan(start, end);
    let batches = sweep::parallel_map(&plan, |&s| generate_network_shard(ops, seed, scale, s));
    let mut agg = MultiAggregator::by_asn();
    for batch in &batches {
        agg.observe_all(batch);
    }
    agg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11_quoted_medians() {
        let at = |cc: &str| median_target(CountryCode::of(cc), MonthStamp::new(2023, 7));
        assert!((at("VE") - 2.93).abs() < 0.05, "VE {}", at("VE"));
        assert!((at("UY") - 47.33).abs() < 0.5, "UY {}", at("UY"));
        assert!((at("BR") - 32.44).abs() < 0.5, "BR {}", at("BR"));
        assert!((at("CL") - 25.25).abs() < 0.5, "CL {}", at("CL"));
        assert!((at("MX") - 18.66).abs() < 0.5, "MX {}", at("MX"));
        assert!((at("AR") - 15.48).abs() < 0.5, "AR {}", at("AR"));
    }

    #[test]
    fn ve_stagnation_below_one_mbps() {
        for y in 2010..=2021 {
            let v = median_target(country::VE, MonthStamp::new(y, 6));
            assert!(v < 1.0, "{y}: {v}");
        }
        // Recovery since late 2021.
        assert!(median_target(country::VE, MonthStamp::new(2023, 1)) > 1.5);
    }

    #[test]
    fn historical_equivalences() {
        // "equivalent to the values achieved in Uruguay and Mexico in
        // November 2013, Chile in June 2017, Argentina in April 2018, and
        // Brazil in September 2019."
        for (cc, y, m) in [
            ("UY", 2013, 11),
            ("MX", 2013, 11),
            ("CL", 2017, 6),
            ("AR", 2018, 4),
            ("BR", 2019, 9),
        ] {
            let v = median_target(CountryCode::of(cc), MonthStamp::new(y, m));
            assert!((v - 2.93).abs() < 0.3, "{cc} {y}-{m}: {v}");
        }
    }

    #[test]
    fn normalised_curve_falls_from_near_average() {
        let mean_at = |m: MonthStamp| {
            let vals: Vec<f64> = country::lacnic_codes()
                .map(|cc| median_target(cc, m))
                .filter(|v| *v > 0.0)
                .collect();
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        let m2009 = MonthStamp::new(2009, 6);
        let norm_2009 = median_target(country::VE, m2009) / mean_at(m2009);
        assert!((0.70..=1.05).contains(&norm_2009), "2009 norm {norm_2009}");
        let m2023 = MonthStamp::new(2023, 7);
        let norm_2023 = median_target(country::VE, m2023) / mean_at(m2023);
        assert!((0.12..=0.26).contains(&norm_2023), "2023 norm {norm_2023}");
        assert!(norm_2023 < norm_2009 / 3.0, "relative collapse");
    }

    #[test]
    fn rows_reestimate_the_targets() {
        let ops = Operators::generate(42);
        let agg = build_aggregate(
            &ops,
            42,
            2.0,
            MonthStamp::new(2023, 6),
            MonthStamp::new(2023, 8),
        );
        let ve = agg.median_series(country::VE);
        let est = ve.get(MonthStamp::new(2023, 7)).unwrap();
        assert!((est - 2.93).abs() / 2.93 < 0.3, "estimated {est}");
        let uy = agg
            .median_series(country::UY)
            .get(MonthStamp::new(2023, 7))
            .unwrap();
        assert!((uy - 47.33).abs() / 47.33 < 0.35, "estimated UY {uy}");
    }

    #[test]
    fn per_network_split_shows_the_fibre_story() {
        use lacnet_mlab::multi::{Group, Metric, MultiAggregator};
        let ops = Operators::generate(42);
        let root = Rng::seeded(5);
        let mut rng = root.fork("per-network");
        let mut agg = MultiAggregator::by_asn();
        let m = MonthStamp::new(2023, 7);
        for _ in 0..5 {
            agg.observe_all(&generate_month_by_network(
                &ops,
                country::VE,
                m,
                3.0,
                &mut rng,
            ));
        }
        let med = |asn: u32| {
            agg.median_series(
                Group::CountryAsn(country::VE, lacnet_types::Asn(asn)),
                Metric::Download,
            )
            .get(m)
            .unwrap_or(0.0)
        };
        let cantv = med(8048);
        let airtek = med(61461);
        assert!(cantv > 0.0 && airtek > 0.0);
        assert!(
            airtek > 2.5 * cantv,
            "fibre entrant {airtek} vs CANTV {cantv}"
        );
    }

    #[test]
    fn per_network_volumes_track_users_and_founding() {
        let ops = Operators::generate(42);
        let root = Rng::seeded(6);
        let mut rng = root.fork("volumes");
        // Before Airtek's 2016 founding it produces no tests.
        let early =
            generate_month_by_network(&ops, country::VE, MonthStamp::new(2014, 1), 3.0, &mut rng);
        assert!(early.iter().all(|t| t.asn != lacnet_types::Asn(61461)));
        // Later, CANTV (21.5% of users) produces the most tests.
        let late =
            generate_month_by_network(&ops, country::VE, MonthStamp::new(2023, 7), 3.0, &mut rng);
        let count = |asn: u32| {
            late.iter()
                .filter(|t| t.asn == lacnet_types::Asn(asn))
                .count()
        };
        assert!(count(8048) > count(21826));
        assert!(count(61461) > 0);
    }

    #[test]
    fn volumes_are_proportional() {
        let ops = Operators::generate(42);
        let root = Rng::seeded(1);
        let mut rng = root.fork("x");
        let br = generate_month(&ops, country::BR, MonthStamp::new(2020, 1), 1.0, &mut rng).len();
        let ve = generate_month(&ops, country::VE, MonthStamp::new(2020, 1), 1.0, &mut rng).len();
        assert!(br > 5 * ve, "BR {br} vs VE {ve}");
        assert!(ve > 50);
    }
}
