//! Cross-dataset consistency: one world, many views. Every dataset must
//! agree about who exists and who dominates — the property that makes the
//! composed picture of the paper meaningful.

use lacnet::bgp::propagation::RouteSim;
use lacnet::crisis::topology::TopologyBuilder;
use lacnet::crisis::{World, WorldConfig};
use lacnet::types::{country, Asn, Date, MonthStamp};
use std::collections::BTreeSet;
use std::sync::OnceLock;

fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| World::generate(WorldConfig::test()))
}

#[test]
fn every_ve_eyeball_exists_in_every_dataset() {
    let w = world();
    let m = MonthStamp::new(2023, 6);
    let graph = w.topology.get(m).expect("snapshot exists");
    let table = w.pfx2as_at(m);
    for op in w.operators.eyeballs(country::VE) {
        // In the topology…
        assert!(
            graph.contains(op.asn),
            "AS{} missing from topology",
            op.asn.raw()
        );
        // …announcing address space…
        assert!(
            !table.prefixes_of(op.asn).is_empty(),
            "AS{} announces nothing",
            op.asn.raw()
        );
        // …with registry space backing the announcement…
        assert!(
            w.addressing.ledger().space_of_holder(op.asn, m.last_day()) > 0,
            "AS{} has no allocation",
            op.asn.raw()
        );
        // …and a population estimate.
        assert!(
            w.operators.populations().users_of(country::VE, op.asn) > 0,
            "AS{} has no users",
            op.asn.raw()
        );
    }
}

#[test]
fn announced_space_never_exceeds_allocated() {
    let w = world();
    for m in [
        MonthStamp::new(2010, 1),
        MonthStamp::new(2017, 1),
        MonthStamp::new(2023, 12),
    ] {
        let table = w.pfx2as_at(m);
        for op in w.operators.in_country(country::VE) {
            let announced = table.address_space_of(op.asn);
            let allocated = w.addressing.ledger().space_of_holder(op.asn, m.last_day());
            assert!(
                announced <= allocated,
                "AS{} announces {announced} > allocated {allocated} at {m}",
                op.asn.raw()
            );
        }
    }
}

#[test]
fn all_announced_origins_reach_collectors() {
    let w = world();
    let m = MonthStamp::new(2021, 3);
    let graph = w.topology.get(m).expect("snapshot exists");
    let table = w.pfx2as_at(m);
    let sim = RouteSim::new(graph);
    let collectors = TopologyBuilder::collectors();
    let origins: BTreeSet<Asn> = table.iter().flat_map(|(_, o)| o.asns().to_vec()).collect();
    for origin in origins {
        let vis = sim.propagate(origin).visibility(&collectors);
        assert!(vis > 0.0, "AS{} in pfx2as but invisible", origin.raw());
    }
}

#[test]
fn probe_hosts_are_real_operators_or_access_tail() {
    let w = world();
    for probe in w
        .dns
        .probes
        .all()
        .iter()
        .filter(|p| p.country == country::VE)
    {
        assert!(
            w.operators.by_asn(probe.asn).is_some(),
            "probe {} hosted by unknown AS{}",
            probe.id,
            probe.asn.raw()
        );
    }
}

#[test]
fn peeringdb_ixp_members_exist_in_population_data_when_eyeballs() {
    let w = world();
    let (_, snap) = w.peeringdb.latest().expect("archive non-empty");
    for ix in &snap.ix {
        for asn in snap.networks_at_ixp(ix.id) {
            // Every member is either a cast operator or a PeeringDB-only
            // network (Table 2 extras, which never carry population).
            if let Some(op) = w.operators.by_asn(asn) {
                if op.users > 0 {
                    assert!(
                        w.operators.populations().users_of(op.country, asn) > 0,
                        "member AS{} lacks population data",
                        asn.raw()
                    );
                }
            }
        }
    }
}

#[test]
fn cert_scan_hosts_are_known_networks() {
    let w = world();
    for scan in &w.cert_scans {
        for rec in &scan.records {
            if rec.country == country::US {
                continue; // hypergiants' own networks
            }
            assert!(
                w.operators.by_asn(rec.asn).is_some(),
                "scan record from unknown AS{}",
                rec.asn.raw()
            );
        }
    }
}

#[test]
fn the_state_never_loses_the_lead() {
    // The thesis of §4: through every dataset, CANTV stays the dominant
    // domestic player across the whole window.
    let w = world();
    let pops = w.operators.populations();
    let ranked = pops.ranked(country::VE);
    assert_eq!(ranked[0].0, Asn(8048));
    for m in [
        MonthStamp::new(2010, 1),
        MonthStamp::new(2016, 1),
        MonthStamp::new(2023, 12),
    ] {
        let table = w.pfx2as_at(m);
        let cantv = table.address_space_of(Asn(8048));
        for op in w.operators.eyeballs(country::VE) {
            if op.asn != Asn(8048) {
                assert!(
                    table.address_space_of(op.asn) <= cantv,
                    "AS{} outgrew CANTV at {m}",
                    op.asn.raw()
                );
            }
        }
    }
    // And the registry view agrees.
    let cantv_alloc = w
        .addressing
        .ledger()
        .space_of_holder(Asn(8048), Date::ymd(2024, 1, 1));
    let telefonica_alloc = w
        .addressing
        .ledger()
        .space_of_holder(Asn(6306), Date::ymd(2024, 1, 1));
    assert!(cantv_alloc > telefonica_alloc);
}
