//! End-to-end HTTP harness for `lacnet-serve`: a real server on an
//! ephemeral port, against a real dumped archive, exercised with raw
//! `TcpStream` requests — no HTTP client dependency anywhere.
//!
//! Covers the serving tentpole from the outside: every registry
//! endpoint's `?format=tsv` body must byte-match its checked-in golden
//! fixture (so serving is provably the same computation as the batch
//! report), `/metrics` must show a hit ratio above zero under repeated
//! traffic, a concurrent hammer on one cold endpoint must compute it
//! exactly once, and malformed requests must come back as typed 4xx
//! responses — never a hang, never a dropped worker.

use lacnet::core::serve::{ServeOptions, Server, ServerHandle};
use lacnet::core::{datasets, registry, DataSource};
use lacnet::crisis::{World, WorldConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Dump the fixed-seed test world once and keep the archive-backed
/// source for every server instance in the binary.
fn archive_source() -> Arc<DataSource<'static>> {
    static SOURCE: OnceLock<Arc<DataSource<'static>>> = OnceLock::new();
    Arc::clone(SOURCE.get_or_init(|| {
        let world = World::generate(WorldConfig::test());
        let dir = std::env::temp_dir().join(format!("lacnet-serve-{}", std::process::id()));
        datasets::dump(&world, &dir).expect("dump succeeds");
        Arc::new(DataSource::from_archive(&dir).expect("archive loads"))
    }))
}

/// Boot a server on an ephemeral port; the accept loop runs on its own
/// thread until the handle shuts it down.
fn boot(options: ServeOptions) -> (SocketAddr, ServerHandle) {
    let server = Server::bind(archive_source(), "127.0.0.1:0", options).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.handle().expect("handle");
    std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle)
}

/// The shared long-lived server most tests talk to.
fn shared_server() -> SocketAddr {
    static ADDR: OnceLock<SocketAddr> = OnceLock::new();
    *ADDR.get_or_init(|| boot(ServeOptions::default()).0)
}

/// Read exactly one HTTP/1.1 response (status, headers, content-length
/// body) off a buffered socket — leaves the stream positioned at the
/// next pipelined response.
fn read_response(reader: &mut BufReader<TcpStream>) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let mut line = String::new();
    reader.read_line(&mut line).expect("status line");
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {line:?}"));
    let mut headers = Vec::new();
    loop {
        let mut h = String::new();
        reader.read_line(&mut h).expect("header line");
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        let (name, value) = h.split_once(':').expect("header colon");
        headers.push((name.to_ascii_lowercase(), value.trim().to_owned()));
    }
    let len: usize = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| v.parse().expect("content-length"))
        .unwrap_or(0);
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body).expect("body");
    (status, headers, body)
}

/// One full GET over a fresh connection.
fn http_get(addr: SocketAddr, target: &str) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    write!(
        stream,
        "GET {target} HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n"
    )
    .expect("request");
    read_response(&mut BufReader::new(stream))
}

/// Send raw bytes over a fresh connection and return the status of the
/// (single) response, panicking rather than hanging if the server goes
/// quiet for more than the client timeout.
fn raw_status(addr: SocketAddr, bytes: &[u8]) -> u16 {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    stream.write_all(bytes).expect("request");
    let (status, _, _) = read_response(&mut BufReader::new(stream));
    status
}

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

#[test]
fn every_endpoint_byte_matches_its_golden_fixture() {
    let addr = shared_server();
    for endpoint in &registry::ENDPOINTS {
        let (status, headers, body) =
            http_get(addr, &format!("{}?format=tsv", endpoint.http_path()));
        assert_eq!(status, 200, "{}", endpoint.id);
        assert!(
            headers
                .iter()
                .any(|(n, v)| n == "content-type" && v.starts_with("text/tab-separated-values")),
            "{}: content type {headers:?}",
            endpoint.id
        );
        let golden = std::fs::read(fixture_dir().join(format!("{}.tsv", endpoint.id)))
            .unwrap_or_else(|_| panic!("no golden fixture for {}", endpoint.id));
        assert_eq!(
            body, golden,
            "{}: served TSV diverges from tests/golden/{}.tsv",
            endpoint.id, endpoint.id
        );
    }
}

#[test]
fn registry_covers_every_golden_fixture_file() {
    // The registry is the single source of truth for artifact naming;
    // a fixture on disk without a route (or vice versa) is drift.
    let mut fixtures: Vec<String> = std::fs::read_dir(fixture_dir())
        .expect("golden dir")
        .filter_map(|e| {
            let name = e.ok()?.file_name().into_string().ok()?;
            Some(name.strip_suffix(".tsv")?.to_owned())
        })
        .collect();
    fixtures.sort();
    let mut ids: Vec<String> = registry::ENDPOINTS
        .iter()
        .map(|e| e.id.to_owned())
        .collect();
    ids.sort();
    assert_eq!(fixtures, ids, "golden fixtures and registry diverged");
}

#[test]
fn json_is_the_default_format_and_parses() {
    let addr = shared_server();
    let (status, headers, body) = http_get(addr, "/fig/11");
    assert_eq!(status, 200);
    assert!(headers
        .iter()
        .any(|(n, v)| n == "content-type" && v.starts_with("application/json")));
    let json =
        lacnet::types::json::Json::parse(std::str::from_utf8(&body).expect("utf8")).expect("json");
    assert_eq!(json.get("id").and_then(|v| v.as_str()), Some("fig11"));
    assert!(json.get("findings").is_some());
    assert!(json.get("artifacts").is_some());
}

#[test]
fn health_archive_and_endpoint_listing() {
    let addr = shared_server();
    let (status, _, body) = http_get(addr, "/healthz");
    assert_eq!(status, 200);
    assert_eq!(body, b"{\"status\":\"ok\"}");

    let (status, _, body) = http_get(addr, "/archive");
    assert_eq!(status, 200);
    let info =
        lacnet::types::json::Json::parse(std::str::from_utf8(&body).expect("utf8")).expect("json");
    assert_eq!(
        info.get("backend").and_then(|v| v.as_str()),
        Some("archive")
    );
    let fp = info
        .get("fingerprint")
        .and_then(|v| v.as_str())
        .expect("fingerprint");
    assert_eq!(fp.len(), 16, "fnv64 hex fingerprint: {fp}");
    assert_eq!(
        info.get("endpoints").and_then(|v| v.as_f64()),
        Some(registry::ENDPOINTS.len() as f64)
    );

    let (status, _, body) = http_get(addr, "/endpoints");
    assert_eq!(status, 200);
    let text = std::str::from_utf8(&body).expect("utf8");
    for endpoint in &registry::ENDPOINTS {
        assert!(text.contains(&endpoint.http_path()), "{}", endpoint.id);
    }

    let (status, _, _) = http_get(addr, "/no/such/route");
    assert_eq!(status, 404);
    let (status, _, _) = http_get(addr, "/tab01?format=xml");
    assert_eq!(status, 400);
}

#[test]
fn metrics_report_a_positive_hit_ratio_under_repeated_traffic() {
    let addr = shared_server();
    // Five requests: enough to warm the P² latency sketch past its
    // initialization threshold, so the quantile series is exposed.
    for _ in 0..5 {
        let (status, _, _) = http_get(addr, "/fig/01?format=tsv");
        assert_eq!(status, 200);
    }
    let (status, _, body) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    let text = std::str::from_utf8(&body).expect("utf8");
    let ratio: f64 = text
        .lines()
        .find(|l| l.starts_with("lacnet_cache_hit_ratio "))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .expect("hit ratio exposed");
    assert!(ratio > 0.0, "hit ratio {ratio} after repeated requests");
    assert!(text.contains("lacnet_requests_total{endpoint=\"fig01\"}"));
    assert!(text.contains("lacnet_request_latency_seconds{endpoint=\"fig01\",quantile=\"0.5\"}"));
}

#[test]
fn concurrent_hammer_computes_once_and_serves_identical_bodies() {
    // A dedicated server instance: its cache and metrics start cold, so
    // the counters below are exactly this test's traffic.
    let (addr, handle) = boot(ServeOptions::default());
    const CLIENTS: usize = 8;
    let bodies: Vec<Vec<u8>> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..CLIENTS)
            .map(|_| {
                scope.spawn(move || {
                    let (status, _, body) = http_get(addr, "/tab01?format=tsv");
                    assert_eq!(status, 200);
                    body
                })
            })
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("client"))
            .collect()
    });
    for body in &bodies[1..] {
        assert_eq!(body, &bodies[0], "concurrent responses diverged");
    }
    let (_, _, metrics) = http_get(addr, "/metrics");
    let text = std::str::from_utf8(&metrics).expect("utf8");
    assert!(
        text.contains(&format!(
            "lacnet_requests_total{{endpoint=\"tab01\"}} {CLIENTS}"
        )),
        "{text}"
    );
    // Single flight: exactly one compute; every other client waited on
    // the in-flight slot and counts as a hit.
    assert!(
        text.contains("lacnet_cache_misses_total{endpoint=\"tab01\"} 1"),
        "{text}"
    );
    assert!(
        text.contains(&format!(
            "lacnet_cache_hits_total{{endpoint=\"tab01\"}} {}",
            CLIENTS - 1
        )),
        "{text}"
    );
    handle.shutdown();
}

#[test]
fn malformed_requests_get_typed_errors_not_hangs() {
    let addr = shared_server();
    assert_eq!(raw_status(addr, b"GARBAGE\r\n\r\n"), 400);
    assert_eq!(raw_status(addr, b"GET /healthz HTTP/9.9\r\n\r\n"), 400);
    assert_eq!(raw_status(addr, b"GET healthz HTTP/1.1\r\n\r\n"), 400);

    let long_uri = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(10_000));
    assert_eq!(raw_status(addr, long_uri.as_bytes()), 414);

    let fat_header = format!(
        "GET /healthz HTTP/1.1\r\nx-pad: {}\r\n\r\n",
        "y".repeat(40_000)
    );
    assert_eq!(raw_status(addr, fat_header.as_bytes()), 431);

    let many_headers = format!(
        "GET /healthz HTTP/1.1\r\n{}\r\n",
        (0..200)
            .map(|i| format!("x-{i}: v\r\n"))
            .collect::<String>()
    );
    assert_eq!(raw_status(addr, many_headers.as_bytes()), 431);

    let huge_body = b"POST /healthz HTTP/1.1\r\ncontent-length: 99999999\r\n\r\n";
    assert_eq!(raw_status(addr, huge_body), 413);
}

#[test]
fn truncated_body_times_out_as_bad_request_instead_of_hanging() {
    // A server with a short read timeout: the client promises 100 bytes,
    // sends 3, and goes quiet. The read deadline must convert that into
    // a typed 400 rather than a parked worker.
    let (addr, handle) = boot(ServeOptions {
        read_timeout: Duration::from_millis(200),
        ..ServeOptions::default()
    });
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\ncontent-length: 100\r\n\r\nabc")
        .expect("request");
    let started = std::time::Instant::now();
    let (status, _, _) = read_response(&mut BufReader::new(stream));
    assert_eq!(status, 400);
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "server sat on a truncated body for {:?}",
        started.elapsed()
    );
    handle.shutdown();
}

#[test]
fn keep_alive_connection_serves_pipelined_requests() {
    let addr = shared_server();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    stream
        .write_all(
            b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n\
              GET /healthz HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n",
        )
        .expect("pipelined requests");
    let mut reader = BufReader::new(stream);
    let (first, _, body1) = read_response(&mut reader);
    let (second, _, body2) = read_response(&mut reader);
    assert_eq!((first, second), (200, 200));
    assert_eq!(body1, body2);
    // The close-marked response ends the connection.
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).expect("eof");
    assert!(rest.is_empty());
}

#[test]
fn conflicting_content_lengths_are_rejected_on_the_wire() {
    let addr = shared_server();
    // Disagreeing Content-Length declarations — across fields or inside
    // one comma-folded list — are the request-smuggling vector; the
    // server answers 400 instead of picking one framing.
    assert_eq!(
        raw_status(
            addr,
            b"GET /healthz HTTP/1.1\r\ncontent-length: 0\r\ncontent-length: 5\r\n\r\n"
        ),
        400
    );
    assert_eq!(
        raw_status(
            addr,
            b"GET /healthz HTTP/1.1\r\ncontent-length: 0, 5\r\n\r\n"
        ),
        400
    );
    // Agreeing duplicates frame one body and the request goes through.
    assert_eq!(
        raw_status(
            addr,
            b"GET /healthz HTTP/1.1\r\ncontent-length: 0\r\ncontent-length: 0\r\nconnection: close\r\n\r\n"
        ),
        200
    );
}

#[test]
fn query_spellings_normalize_on_the_wire() {
    let addr = shared_server();
    // Escaped, duplicated and plain spellings of `format=tsv` serve the
    // identical body; a malformed escape is a typed 400.
    let (status, _, plain) = http_get(addr, "/fig/02?format=tsv");
    assert_eq!(status, 200);
    let (status, headers, escaped) = http_get(addr, "/fig/02?format=%74sv");
    assert_eq!(status, 200);
    assert!(headers
        .iter()
        .any(|(n, v)| n == "content-type" && v.starts_with("text/tab-separated-values")));
    assert_eq!(plain, escaped);
    let (status, _, duplicated) = http_get(addr, "/fig/02?format=json&format=tsv");
    assert_eq!(status, 200);
    assert_eq!(plain, duplicated);
    let (status, _, _) = http_get(addr, "/fig/02?format=%zzv");
    assert_eq!(status, 400);
}

#[test]
fn ndt_month_query_serves_selective_read_stats() {
    let addr = shared_server();
    // Pick a real (VE, month) label off the archive's shard index.
    let source = archive_source();
    let (month, _) = source
        .mlab()
        .median_series(lacnet::types::country::VE)
        .last()
        .expect("test world has VE data");
    let (status, headers, body) = http_get(addr, &format!("/ndt/VE/{month}"));
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    assert!(headers
        .iter()
        .any(|(n, v)| n == "content-type" && v.starts_with("application/json")));
    let json =
        lacnet::types::json::Json::parse(std::str::from_utf8(&body).expect("utf8")).expect("json");
    assert_eq!(json.get("country").and_then(|v| v.as_str()), Some("VE"));
    assert!(json.get("rows").and_then(|v| v.as_f64()).unwrap() > 0.0);
    // The archive serves the dumped tree's native format and reports
    // what the read touched.
    let fmt = json.get("format").and_then(|v| v.as_str()).expect("format");
    assert!(
        fmt == "text" || fmt.starts_with("columnar"),
        "unexpected backing format {fmt}"
    );
    assert!(json.get("read").is_some());
    // The repeat serves byte-identical cached bytes.
    let (_, _, again) = http_get(addr, &format!("/ndt/VE/{month}"));
    assert_eq!(body, again);
    // Absent months are 404s, malformed paths 400s — typed, never hangs.
    let (status, _, _) = http_get(addr, "/ndt/VE/1805-12");
    assert_eq!(status, 404);
    let (status, _, _) = http_get(addr, "/ndt/VE/whenever");
    assert_eq!(status, 400);
    let (status, _, _) = http_get(addr, "/ndt/VEN/2020-01");
    assert_eq!(status, 400);
}

#[test]
fn ndt_range_query_on_the_wire_is_byte_stable_and_shares_cache_slots() {
    // A dedicated server: the ndt-range counters below are exactly this
    // test's traffic.
    let (addr, handle) = boot(ServeOptions::default());
    let source = archive_source();
    let series: Vec<_> = source
        .mlab()
        .median_series(lacnet::types::country::VE)
        .iter()
        .collect();
    assert!(series.len() >= 3, "test world spans months");
    let (from, _) = series[series.len() - 3];
    let (to, _) = *series.last().unwrap();

    let (status, headers, body) = http_get(addr, &format!("/ndt/VE?from={from}&to={to}"));
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    assert!(headers
        .iter()
        .any(|(n, v)| n == "content-type" && v.starts_with("application/json")));
    let json =
        lacnet::types::json::Json::parse(std::str::from_utf8(&body).expect("utf8")).expect("json");
    assert_eq!(json.get("country").and_then(|v| v.as_str()), Some("VE"));
    assert_eq!(
        json.get("months_queried").and_then(|v| v.as_f64()),
        Some(3.0)
    );
    assert!(json.get("rows").and_then(|v| v.as_f64()).unwrap() > 0.0);
    assert!(json.get("months").is_some());
    assert!(json.get("read").is_some());

    // Repeats and every spelling of the window — reordered keys,
    // percent-escaped key — serve byte-identical bytes from ONE slot.
    let (_, _, again) = http_get(addr, &format!("/ndt/VE?from={from}&to={to}"));
    assert_eq!(body, again, "range response not byte-stable");
    let (_, _, reordered) = http_get(addr, &format!("/ndt/VE?to={to}&from={from}"));
    assert_eq!(body, reordered);
    let (_, _, escaped) = http_get(addr, &format!("/ndt/VE?from={from}&%74o={to}"));
    assert_eq!(body, escaped);
    let (_, _, metrics) = http_get(addr, "/metrics");
    let text = std::str::from_utf8(&metrics).expect("utf8");
    assert!(
        text.contains("lacnet_cache_misses_total{endpoint=\"ndt-range\"} 1"),
        "{text}"
    );
    assert!(
        text.contains("lacnet_cache_hits_total{endpoint=\"ndt-range\"} 3"),
        "{text}"
    );

    // Reversed, out-of-dataset, incomplete and malformed ranges are
    // typed 400s on the wire.
    for bad in [
        format!("/ndt/VE?from={to}&to={from}"),
        "/ndt/VE?from=1805-01&to=1806-01".to_owned(),
        "/ndt/VE?from=2020-01".to_owned(),
        "/ndt/VE?from=whenever&to=2020-01".to_owned(),
        "/ndt/VE?from=%zz&to=2020-01".to_owned(),
        "/ndt/VEN?from=2020-01&to=2020-02".to_owned(),
    ] {
        let (status, _, _) = http_get(addr, &bad);
        assert_eq!(status, 400, "{bad}");
    }
    handle.shutdown();
}

#[test]
fn scenarios_inventory_lists_every_builtin() {
    let addr = shared_server();
    let (status, headers, body) = http_get(addr, "/scenarios");
    assert_eq!(status, 200);
    assert!(headers
        .iter()
        .any(|(n, v)| n == "content-type" && v.starts_with("application/json")));
    let text = std::str::from_utf8(&body).expect("utf8");
    lacnet::types::json::Json::parse(text).expect("inventory is valid json");
    for name in lacnet::crisis::Scenario::builtin_names() {
        assert!(text.contains(&format!("\"name\":\"{name}\"")), "{text}");
    }
    // Exactly one scenario is the paper's default storyline, and it is
    // the one the resident archive was dumped under.
    assert_eq!(text.matches("\"default\":true").count(), 1, "{text}");
    assert_eq!(text.matches("\"resident\":true").count(), 1, "{text}");

    // The bare scenario path serves an info body for the same name.
    let (status, _, body) = http_get(addr, "/scenario/venezuela");
    assert_eq!(status, 200);
    let info =
        lacnet::types::json::Json::parse(std::str::from_utf8(&body).expect("utf8")).expect("json");
    assert_eq!(info.get("name").and_then(|v| v.as_str()), Some("venezuela"));
    assert_eq!(info.get("default").and_then(|v| v.as_bool()), Some(true));
}

#[test]
fn unknown_scenario_is_a_typed_404() {
    let addr = shared_server();
    let (status, _, body) = http_get(addr, "/scenario/atlantis/fig/01");
    assert_eq!(status, 404);
    assert!(String::from_utf8_lossy(&body).contains("/scenarios"));
    let (status, _, _) = http_get(addr, "/scenario/atlantis");
    assert_eq!(status, 404);
}

#[test]
fn scenario_scoped_routes_get_their_own_cache_slots() {
    // A dedicated server so the metrics below are exactly this traffic.
    let (addr, handle) = boot(ServeOptions::default());

    // The resident scenario name routes to the resident source: bytes
    // must match the unscoped route exactly.
    let (status, _, scoped) = http_get(addr, "/scenario/venezuela/fig/01?format=tsv");
    assert_eq!(status, 200);
    let (_, _, unscoped) = http_get(addr, "/fig/01?format=tsv");
    assert_eq!(
        scoped, unscoped,
        "resident-scenario route diverged from the unscoped route"
    );

    // A non-resident builtin lazily generates its own world; the cable
    // cut rewrites the cables figure but leaves the economy untouched.
    let (status, _, cut_fig04) = http_get(addr, "/scenario/cable-cut/fig/04?format=tsv");
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&cut_fig04));
    let (_, _, base_fig04) = http_get(addr, "/fig/04?format=tsv");
    assert_ne!(
        cut_fig04, base_fig04,
        "cable-cut scenario served the default cables figure"
    );
    let (_, _, cut_again) = http_get(addr, "/scenario/cable-cut/fig/04?format=tsv");
    assert_eq!(cut_fig04, cut_again, "scenario-scoped cache not stable");

    // Distinct fingerprints mean distinct LRU slots: the scoped and
    // unscoped fig04 requests were both cold misses, and the repeat was
    // a hit on the scenario's own slot.
    let (_, _, metrics) = http_get(addr, "/metrics");
    let text = std::str::from_utf8(&metrics).expect("utf8");
    assert!(
        text.contains("lacnet_cache_misses_total{endpoint=\"fig04\"} 2"),
        "{text}"
    );
    assert!(
        text.contains("lacnet_cache_hits_total{endpoint=\"fig04\"} 1"),
        "{text}"
    );
    handle.shutdown();
}

#[test]
fn post_is_rejected_with_405() {
    let addr = shared_server();
    assert_eq!(
        raw_status(addr, b"POST /healthz HTTP/1.1\r\ncontent-length: 0\r\n\r\n"),
        405
    );
}
