//! Golden-output regression suite.
//!
//! Every figure series, table row, heatmap cell and finding the battery
//! (and the extensions) produces from the fixed-seed test world is
//! rendered to a canonical TSV form and compared byte-for-byte against
//! the fixtures under `tests/golden/`. Any refactor of the pipeline —
//! sharding, caching, batching — must leave these bytes untouched; a PR
//! that intends to change them regenerates the fixtures with
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden
//! ```
//!
//! and ships the diff for review. f64 values are rendered with Rust's
//! shortest-roundtrip formatting, which is deterministic across
//! platforms, so the fixtures are portable.

use lacnet::core::render::canonical_tsv;
use lacnet::core::{experiments, extensions, DataSource};
use lacnet::crisis::{World, WorldConfig};
use std::path::PathBuf;
use std::sync::OnceLock;

/// The suite's fixed world: the same seed/config the unit tests use,
/// behind the in-memory battery interface.
fn source() -> &'static DataSource<'static> {
    static WORLD: OnceLock<World> = OnceLock::new();
    static SOURCE: OnceLock<DataSource<'static>> = OnceLock::new();
    SOURCE.get_or_init(|| {
        DataSource::in_memory(WORLD.get_or_init(|| World::generate(WorldConfig::test())))
    })
}

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Compare `rendered` against the checked-in fixture, or rewrite the
/// fixture when `UPDATE_GOLDEN=1`. On mismatch the panic names the first
/// diverging line so a multi-thousand-line diff stays readable.
fn compare_or_update(name: &str, rendered: &str) {
    let path = fixture_dir().join(format!("{name}.tsv"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(fixture_dir()).expect("create fixture dir");
        std::fs::write(&path, rendered).expect("write fixture");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing golden fixture {}; run `UPDATE_GOLDEN=1 cargo test --test golden` \
             and commit the result",
            path.display()
        )
    });
    if rendered == expected {
        return;
    }
    let mismatch = expected
        .lines()
        .zip(rendered.lines())
        .enumerate()
        .find(|(_, (e, r))| e != r);
    match mismatch {
        Some((i, (e, r))) => panic!(
            "golden mismatch for {name} at line {}:\n  expected: {e}\n  rendered: {r}\n\
             (refresh intentionally with UPDATE_GOLDEN=1)",
            i + 1
        ),
        None => panic!(
            "golden mismatch for {name}: line counts differ \
             (expected {} lines, rendered {}); refresh intentionally with UPDATE_GOLDEN=1",
            expected.lines().count(),
            rendered.lines().count()
        ),
    }
}

#[test]
fn battery_matches_golden_fixtures() {
    let results = experiments::all(source());
    assert_eq!(results.len(), 22, "fig01–fig21 plus tab01");
    for result in &results {
        compare_or_update(&result.id, &canonical_tsv(result));
    }
}

#[test]
fn extensions_match_golden_fixtures() {
    for result in &extensions::all(source()) {
        compare_or_update(&result.id, &canonical_tsv(result));
    }
}

#[test]
fn fixtures_cover_every_battery_id() {
    // A fixture that stops being compared is a silent hole in the fence —
    // assert the directory holds exactly the expected artifact set.
    let mut on_disk: Vec<String> = std::fs::read_dir(fixture_dir())
        .expect("fixture dir exists — run UPDATE_GOLDEN=1 once")
        .filter_map(|e| {
            let name = e.ok()?.file_name().into_string().ok()?;
            name.strip_suffix(".tsv").map(str::to_owned)
        })
        .collect();
    on_disk.sort();
    // The endpoint registry is the single source of truth for artifact
    // ids — the same list `vzla-report` runs and `lacnet-serve` routes.
    let mut expected: Vec<String> = lacnet::core::registry::ENDPOINTS
        .iter()
        .map(|e| e.id.to_owned())
        .collect();
    expected.sort();
    assert_eq!(on_disk, expected);
}
