//! Reproducibility: identical seeds give bit-identical artifacts; other
//! seeds still reproduce the paper (the conclusions don't hinge on one
//! lucky RNG stream).

use lacnet::core::{experiments, DataSource};
use lacnet::crisis::{World, WorldConfig};

#[test]
fn same_seed_same_artifacts() {
    let config = WorldConfig {
        mlab_volume_scale: 0.05,
        ..WorldConfig::default()
    };
    let a = World::generate(config);
    let b = World::generate(config);
    // Spot-check structured equality across dataset kinds.
    assert_eq!(a.operators.all(), b.operators.all());
    assert_eq!(a.cert_scans, b.cert_scans);
    assert_eq!(a.top_sites, b.top_sites);
    assert_eq!(
        a.pfx2as_at(lacnet::types::MonthStamp::new(2020, 6))
            .to_text(),
        b.pfx2as_at(lacnet::types::MonthStamp::new(2020, 6))
            .to_text()
    );
    // And the figure series themselves.
    let fa = experiments::fig11_bandwidth::run(&DataSource::in_memory(&a));
    let fb = experiments::fig11_bandwidth::run(&DataSource::in_memory(&b));
    assert_eq!(fa.artifacts, fb.artifacts);
}

#[test]
fn same_seed_same_ndt_archive_bytes() {
    use lacnet::crisis::bandwidth;
    use lacnet::types::MonthStamp;
    let config = WorldConfig {
        mlab_volume_scale: 0.05,
        ..WorldConfig::default()
    };
    let world = World::generate(config);
    let (start, end) = (MonthStamp::new(2022, 1), MonthStamp::new(2022, 4));
    // Two fresh builds from the same seed, across different worker
    // counts, must produce the same TSV bytes down to the last row.
    let reference =
        bandwidth::build_archive_serial(&world.operators, config.seed, 0.05, start, end);
    assert!(!reference.is_empty());
    for workers in [1, 2, 7] {
        assert_eq!(
            bandwidth::build_archive_with_workers(
                workers,
                &world.operators,
                config.seed,
                0.05,
                start,
                end
            ),
            reference
        );
    }
    // And a shard regenerated in isolation matches its slice of the plan:
    // shard RNG streams depend only on (seed, country, month).
    let shard = (lacnet::types::country::VE, MonthStamp::new(2022, 3));
    let solo = bandwidth::generate_shard(&world.operators, config.seed, 0.05, shard);
    let again = bandwidth::generate_shard(&world.operators, config.seed, 0.05, shard);
    assert_eq!(solo, again);
    let rendered: String = solo.iter().map(|t| t.to_row() + "\n").collect();
    assert!(
        reference.contains(&rendered),
        "a standalone shard must reproduce its exact span of the archive"
    );
}

#[test]
fn different_seed_still_reproduces_headlines() {
    let config = WorldConfig {
        seed: 0xDEAD_BEEF,
        mlab_volume_scale: 0.4,
        ..WorldConfig::default()
    };
    let world = World::generate(config);
    let src = DataSource::in_memory(&world);
    for result in [
        experiments::fig01_macro::run(&src),
        experiments::fig03_facilities::run(&src),
        experiments::fig04_cables::run(&src),
        experiments::fig08_cantv_degree::run(&src),
        experiments::fig11_bandwidth::run(&src),
        experiments::fig12_gpdns_rtt::run(&src),
        experiments::tab01_isps::run(&src),
    ] {
        assert!(
            result.all_match(),
            "{} diverges under seed 0xDEADBEEF: {:#?}",
            result.id,
            result.findings
        );
    }
}
