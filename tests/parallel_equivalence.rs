//! The parallel paths are pure speed: byte-identical output to the
//! serial reference implementations, and each pfx2as month derived at
//! most once per process no matter how many sweeps race for it.

use lacnet::core::{experiments, extensions, render, DataSource};
use lacnet::crisis::{World, WorldConfig};
use lacnet::types::MonthStamp;
use std::sync::OnceLock;

/// World generation takes seconds; the test binary builds one and shares
/// it across every test in the file.
fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| World::generate(WorldConfig::test()))
}

/// The same shared world behind the in-memory battery interface.
fn source() -> &'static DataSource<'static> {
    static SOURCE: OnceLock<DataSource<'static>> = OnceLock::new();
    SOURCE.get_or_init(|| DataSource::in_memory(world()))
}

#[test]
fn parallel_battery_matches_serial_byte_for_byte() {
    let src = source();
    let parallel = experiments::all(src);
    let serial = experiments::all_serial(src);
    assert_eq!(parallel.len(), serial.len());
    // Structured equality first (better failure messages) …
    for (p, s) in parallel.iter().zip(&serial) {
        assert_eq!(p.id, s.id, "battery order must be paper order");
        assert_eq!(p, s, "{} diverged between parallel and serial runs", p.id);
    }
    // … then the rendered report, the actual published byte stream.
    let render_all = |results: &[lacnet::core::ExperimentResult]| -> String {
        results.iter().map(render::render_result).collect()
    };
    assert_eq!(render_all(&parallel), render_all(&serial));
}

#[test]
fn parallel_extensions_match_serial() {
    let src = source();
    let parallel = extensions::all(src);
    let serial = vec![
        extensions::ext_blackouts(src),
        extensions::ext_inference(src),
        extensions::ext_network_split(src),
    ];
    assert_eq!(parallel, serial);
}

#[test]
fn sharded_ndt_build_is_worker_count_invariant() {
    use lacnet::crisis::bandwidth;
    let world = world();
    let (ops, seed) = (&world.operators, world.config.seed);
    let (start, end) = (MonthStamp::new(2019, 1), MonthStamp::new(2019, 6));
    // The raw archive bytes …
    let archive = bandwidth::build_archive_serial(ops, seed, 0.5, start, end);
    assert!(!archive.is_empty());
    // … and the monthly medians the analysis reads off them, rendered to
    // the byte strings the comparison is really about.
    let medians = |agg: &lacnet::mlab::aggregate::MonthlyAggregator| -> String {
        let mut out = String::new();
        for cc in agg.countries() {
            for (m, v) in agg.median_series(cc).iter() {
                out.push_str(&format!("{cc}\t{m}\t{v}\n"));
            }
        }
        out
    };
    let serial_medians = medians(&bandwidth::build_aggregate_serial(
        ops, seed, 0.5, start, end,
    ));
    for workers in [1, 2, 7] {
        assert_eq!(
            bandwidth::build_archive_with_workers(workers, ops, seed, 0.5, start, end),
            archive,
            "archive bytes must not depend on worker count ({workers})"
        );
        assert_eq!(
            medians(&bandwidth::build_aggregate_with_workers(
                workers, ops, seed, 0.5, start, end
            )),
            serial_medians,
            "monthly medians must not depend on worker count ({workers})"
        );
    }
    // The default entry points are the same plan, merged in plan order.
    assert_eq!(
        bandwidth::build_archive(ops, seed, 0.5, start, end),
        archive
    );
    assert_eq!(
        medians(&bandwidth::build_aggregate(ops, seed, 0.5, start, end)),
        serial_medians
    );
}

#[test]
fn world_mlab_stream_is_the_sharded_build() {
    use lacnet::crisis::{bandwidth, config::windows};
    let world = world();
    // `World::generate` must aggregate exactly the shard stream any
    // worker count produces — rebuild it serially and compare medians.
    let rebuilt = bandwidth::build_aggregate_serial(
        &world.operators,
        world.config.seed,
        world.config.mlab_volume_scale,
        windows::mlab_start(),
        world.config.end,
    );
    assert_eq!(world.mlab.group_count(), rebuilt.group_count());
    for cc in world.mlab.countries() {
        assert_eq!(
            world.mlab.median_series(cc),
            rebuilt.median_series(cc),
            "median series diverged for {cc}"
        );
    }
}

#[test]
fn cached_cone_matches_fresh_compute_and_computes_once() {
    use lacnet::types::Asn;
    let world = world();
    let cantv = Asn(8048);
    for m in [
        MonthStamp::new(1998, 1),
        MonthStamp::new(2013, 6),
        world.config.end,
    ] {
        assert_eq!(
            *world.customer_cone_at(m, cantv),
            world.customer_cone_uncached(m, cantv),
            "cached cone for {m} must equal a fresh walk"
        );
    }
    // Racing consumers of the same (month, asn) share one computation.
    let m = MonthStamp::new(2016, 2);
    let before = world.cone_computations();
    std::thread::scope(|s| {
        for _ in 0..6 {
            s.spawn(|| world.customer_cone_at(m, cantv));
        }
    });
    assert_eq!(
        world.cone_computations() - before,
        1,
        "six racing requests, one cone walk"
    );
    // The cached series equals the serial analytics reference.
    assert_eq!(
        world.cone_size_series(cantv),
        lacnet::bgp::analytics::cone_size_series(&world.topology, cantv)
    );
}

#[test]
fn cached_pfx2as_matches_fresh_compute() {
    let world = world();
    for m in [
        MonthStamp::new(2008, 1),
        MonthStamp::new(2016, 6),
        MonthStamp::new(2023, 7),
        world.config.end,
    ] {
        assert_eq!(
            world.pfx2as_at(m).to_text(),
            world.pfx2as_uncached(m).to_text(),
            "cached table for {m} must equal a fresh derivation"
        );
    }
    // A month outside the topology window: both paths agree it is empty.
    let outside = MonthStamp::new(1990, 1);
    assert!(world.pfx2as_at(outside).is_empty());
    assert!(world.pfx2as_uncached(outside).is_empty());
}

#[test]
fn pfx2as_months_compute_at_most_once_across_sweeps() {
    let world = world();
    // Drive the two heavy pfx2as consumers concurrently, twice each.
    let src = source();
    std::thread::scope(|s| {
        for _ in 0..2 {
            s.spawn(|| experiments::fig02_address_space::run(src));
            s.spawn(|| experiments::fig14_prefix_heatmap::run(src));
        }
    });
    let after_first = world.pfx2as_computations();
    // The union of both figures' windows is bounded by the full pfx2as
    // window — more computations than distinct months would mean
    // duplicate work. The other tests in this binary share the world and
    // touch a handful of months of their own (one outside the window),
    // hence the small slack.
    let window_months = lacnet::crisis::config::windows::pfx2as_start()
        .through(world.config.end)
        .count();
    assert!(
        after_first <= window_months + 8,
        "{after_first} computations for a {window_months}-month window"
    );
    // Re-running the same sweeps adds no computations at all.
    experiments::fig02_address_space::run(src);
    experiments::fig14_prefix_heatmap::run(src);
    assert_eq!(world.pfx2as_computations(), after_first);
}
