//! The generated world speaks the real datasets' byte formats: every
//! dataset must survive a serialise → parse round trip and yield the same
//! analysis results afterwards.

use lacnet::bgp::{serial1, AsGraph, PfxToAs, TopologyArchive};
use lacnet::crisis::{World, WorldConfig};
use lacnet::peeringdb::Snapshot;
use lacnet::registry::delegation::DelegationFile;
use lacnet::telegeo::CableMap;
use lacnet::types::{country, Asn, Date, MonthStamp};
use std::sync::OnceLock;

fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| World::generate(WorldConfig::test()))
}

#[test]
fn serial1_archive_roundtrip_preserves_analysis() {
    let w = world();
    let mut reparsed = TopologyArchive::new();
    for (m, graph) in w.topology.iter().take(60) {
        let text = serial1::to_text(&graph.edges(), "roundtrip test");
        let back = AsGraph::from_edges(serial1::parse(&text).expect("own output parses"));
        assert_eq!(back.edge_count(), graph.edge_count(), "{m}");
        assert_eq!(
            back.upstream_count(Asn(8048)),
            graph.upstream_count(Asn(8048)),
            "{m}"
        );
        reparsed.insert(m, back);
    }
    assert_eq!(reparsed.len(), 60);
}

#[test]
fn pfx2as_roundtrip_preserves_address_space() {
    let w = world();
    for m in [
        MonthStamp::new(2012, 6),
        MonthStamp::new(2018, 6),
        MonthStamp::new(2023, 9),
    ] {
        let table = w.pfx2as_at(m);
        let back = PfxToAs::parse(&table.to_text()).expect("own output parses");
        assert_eq!(back.len(), table.len(), "{m}");
        for asn in [Asn(8048), Asn(6306), Asn(21826)] {
            assert_eq!(
                back.address_space_of(asn),
                table.address_space_of(asn),
                "{m} {asn}"
            );
        }
    }
}

#[test]
fn delegation_file_roundtrip() {
    let w = world();
    let f = w.addressing.delegation_file(Date::ymd(2024, 1, 1));
    let text = f.to_text(Date::ymd(2024, 1, 1));
    let back = DelegationFile::parse(&text).expect("own output parses");
    assert_eq!(back.records.len(), f.records.len());
    for cc in country::lacnic_codes() {
        assert_eq!(
            back.ipv4_space(cc, Date::ymd(2024, 1, 1)),
            f.ipv4_space(cc, Date::ymd(2024, 1, 1)),
            "{cc}"
        );
    }
}

#[test]
fn peeringdb_snapshots_roundtrip_and_validate() {
    let w = world();
    for (m, snap) in w.peeringdb.iter().step_by(12) {
        snap.validate().unwrap_or_else(|e| panic!("{m}: {e}"));
        let back = Snapshot::from_json(&snap.to_json()).expect("own JSON parses");
        assert_eq!(&back, snap, "{m}");
    }
}

#[test]
fn cable_map_roundtrip() {
    let w = world();
    let back = CableMap::from_json(&w.cables.to_json()).expect("own JSON parses");
    assert_eq!(back.len(), w.cables.len());
    assert_eq!(
        back.serving(country::VE, Date::ymd(2024, 1, 1)).len(),
        w.cables.serving(country::VE, Date::ymd(2024, 1, 1)).len()
    );
}

#[test]
fn chaos_strings_decode_back_to_their_instances() {
    let w = world();
    for inst in w.dns.roots.all() {
        let txt = lacnet::atlas::chaos::encode(inst);
        let decoded = lacnet::atlas::chaos::decode(inst.letter, &txt)
            .unwrap_or_else(|e| panic!("{txt}: {e}"));
        assert_eq!(decoded.site, inst.site, "{txt}");
        assert_eq!(decoded.country(), Some(inst.country), "{txt}");
    }
}

#[test]
fn ndt_rows_roundtrip_through_archive_format() {
    use lacnet::crisis::bandwidth;
    use lacnet::types::rng::Rng;
    let w = world();
    let mut rng = Rng::seeded(1).fork("roundtrip");
    let tests = bandwidth::generate_month(
        &w.operators,
        country::VE,
        MonthStamp::new(2020, 6),
        1.0,
        &mut rng,
    );
    assert!(!tests.is_empty());
    let text: String = tests.iter().map(|t| t.to_row() + "\n").collect();
    let back = lacnet::mlab::ndt::parse_rows(&text).expect("own rows parse");
    assert_eq!(back.len(), tests.len());
}

#[test]
fn cert_scans_roundtrip() {
    let w = world();
    for scan in &w.cert_scans {
        let back = lacnet::offnets::CertScan::from_json(&scan.to_json()).expect("own JSON parses");
        assert_eq!(&back, scan);
    }
}

#[test]
fn top_sites_roundtrip() {
    let w = world();
    for list in &w.top_sites {
        let back =
            lacnet::webmeas::CountryTopSites::from_json(&list.to_json()).expect("own JSON parses");
        assert_eq!(&back, list);
    }
}
