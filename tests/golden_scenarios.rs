//! Golden-output regression suite for non-default scenarios.
//!
//! The main golden suite pins the default (Venezuela) storyline; this
//! one pins a counterfactual world so the scenario layer itself is
//! fenced: the cable-cut scenario must keep producing the same bytes,
//! and it must differ from the default exactly where the storyline says
//! it does (the cable map) and nowhere it does not (the economy).
//!
//! Refresh intentionally with
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_scenarios
//! ```

use lacnet::core::render::canonical_tsv;
use lacnet::core::{experiments, DataSource};
use lacnet::crisis::{Scenario, World, WorldConfig};
use std::path::PathBuf;
use std::sync::OnceLock;

/// The fixed-seed test world under the cable-cut scenario.
fn source() -> &'static DataSource<'static> {
    static WORLD: OnceLock<World> = OnceLock::new();
    static SOURCE: OnceLock<DataSource<'static>> = OnceLock::new();
    SOURCE.get_or_init(|| {
        DataSource::in_memory(WORLD.get_or_init(|| {
            let scenario = Scenario::builtin("cable-cut").expect("builtin scenario");
            World::generate_with(WorldConfig::test(), scenario)
        }))
    })
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn scenario_fixture(name: &str) -> PathBuf {
    golden_dir().join(format!("scenarios/cable-cut/{name}.tsv"))
}

fn rendered(id: &str) -> String {
    let result = experiments::all(source())
        .into_iter()
        .find(|r| r.id == id)
        .unwrap_or_else(|| panic!("battery has no artifact {id}"));
    canonical_tsv(&result)
}

#[test]
fn cable_cut_cables_figure_matches_its_golden_fixture() {
    let fig04 = rendered("fig04");
    let path = scenario_fixture("fig04");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create fixture dir");
        std::fs::write(&path, &fig04).expect("write fixture");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing scenario fixture {}; run `UPDATE_GOLDEN=1 cargo test --test \
             golden_scenarios` and commit the result",
            path.display()
        )
    });
    assert_eq!(
        fig04, expected,
        "cable-cut fig04 diverged from its golden fixture \
         (refresh intentionally with UPDATE_GOLDEN=1)"
    );
    // The counterfactual must actually differ from the default storyline:
    // two failed systems change the cable figure.
    let default_fig04 =
        std::fs::read_to_string(golden_dir().join("fig04.tsv")).expect("main fixture");
    assert_ne!(
        fig04, default_fig04,
        "cable-cut scenario reproduced the default cable map"
    );
}

#[test]
fn cable_cut_leaves_the_economy_byte_identical() {
    // The cable-cut sidecar carries no GDP overrides, so the economy
    // figure must equal the default suite's fixture byte for byte —
    // overlays touch only what they declare.
    let default_fig01 =
        std::fs::read_to_string(golden_dir().join("fig01.tsv")).expect("main fixture");
    assert_eq!(
        rendered("fig01"),
        default_fig01,
        "a scenario with no GDP overrides changed the economy figure"
    );
}
