//! End-to-end: generate a world and require every one of the paper's 22
//! artifacts to reproduce within its experiment's tolerances.

use lacnet::core::{experiments, render, DataSource};
use lacnet::crisis::{World, WorldConfig};
use std::sync::OnceLock;

fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| World::generate(WorldConfig::test()))
}

fn source() -> &'static DataSource<'static> {
    static SOURCE: OnceLock<DataSource<'static>> = OnceLock::new();
    SOURCE.get_or_init(|| DataSource::in_memory(world()))
}

#[test]
fn every_experiment_matches_the_paper() {
    let results = experiments::all(source());
    assert_eq!(results.len(), 22, "all figures and tables covered");
    let diverged: Vec<String> = results
        .iter()
        .filter(|r| !r.all_match())
        .map(|r| format!("{}\n{}", r.id, render::render_result(r)))
        .collect();
    assert!(
        diverged.is_empty(),
        "diverging experiments:\n{}",
        diverged.join("\n")
    );
}

#[test]
fn experiment_ids_are_unique_and_ordered() {
    let results = experiments::all(source());
    let ids: Vec<&str> = results.iter().map(|r| r.id.as_str()).collect();
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), ids.len(), "duplicate experiment id");
    assert_eq!(ids[0], "fig01");
    assert!(ids.contains(&"tab01"));
}

#[test]
fn every_experiment_produces_renderable_artifacts() {
    for result in experiments::all(source()) {
        assert!(
            !result.artifacts.is_empty(),
            "{} has no artifacts",
            result.id
        );
        assert!(!result.findings.is_empty(), "{} has no findings", result.id);
        for artifact in &result.artifacts {
            let text = render::render_artifact(artifact);
            assert!(!text.is_empty(), "{} renders empty", artifact.id());
            let csv = render::to_csv(artifact);
            assert!(csv.lines().count() >= 1, "{} CSV empty", artifact.id());
        }
    }
}
