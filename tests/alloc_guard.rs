//! Allocation-count regression guard for the zero-copy `.ndtc` read
//! path.
//!
//! The borrowed scan's contract is that after one warm-up pass a range
//! scan performs **zero** per-block heap allocations: fixed-width float
//! columns are served as borrowed [`ColumnSlice`]s straight out of the
//! container buffer, and the varint/dictionary columns decode into a
//! caller-owned [`DecodeScratch`] arena that is cleared — never shrunk —
//! between blocks. This test pins that contract with a counting global
//! allocator: encode a multi-block v2 container in memory, warm the
//! scratch with one scan, then assert the second scan allocates nothing
//! at all.
//!
//! The guard lives in its own integration-test binary on purpose: the
//! `#[global_allocator]` is process-wide, and a single `#[test]` keeps
//! the counting window free of concurrent harness traffic. (The library
//! crates forbid `unsafe`; an integration test is a separate crate, and
//! the allocator shim below is the one place it is warranted.)
//!
//! [`ColumnSlice`]: lacnet::mlab::ColumnSlice
//! [`DecodeScratch`]: lacnet::mlab::DecodeScratch

use lacnet::mlab::columnar::{self, ColumnSelection};
use lacnet::mlab::{ColumnReader, DecodeScratch, NdtTest};
use lacnet::types::{country, Asn, Date};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Counts every allocation (and growth-realloc) while armed; forwards
/// everything to the system allocator untouched.
struct CountingAllocator;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Run `f` with the counter armed and return how many heap allocations
/// it performed.
fn allocations_during<R>(f: impl FnOnce() -> R) -> (R, usize) {
    ALLOCATIONS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let result = f();
    ARMED.store(false, Ordering::SeqCst);
    (result, ALLOCATIONS.load(Ordering::SeqCst))
}

#[test]
fn warm_range_scan_performs_zero_per_block_allocations() {
    // A container that genuinely exercises the block machinery: 96 rows
    // over two countries and alternating ASNs, sealed at 8 rows per
    // block → 12 blocks, each with dates, dictionaries and all four
    // float columns populated.
    let rows: Vec<NdtTest> = (0..96)
        .map(|i| NdtTest {
            date: Date::from_days_since_epoch(18_000 + (i as i64) / 4),
            country: if i % 3 == 0 { country::BR } else { country::VE },
            asn: Asn(8_048 + (i as u32 % 5) * 991),
            download_mbps: 0.5 + i as f64 * 0.25,
            upload_mbps: 0.1 + i as f64 * 0.125,
            min_rtt_ms: 20.0 + (i % 40) as f64,
            loss_rate: (i % 10) as f64 / 100.0,
        })
        .collect();
    let bytes = columnar::encode_v2_with(&lacnet::mlab::ColumnBatch::from_rows(&rows), 8);
    let reader = ColumnReader::open(&bytes).expect("container opens");
    let selection = ColumnSelection::all().with_country(country::VE);
    let mut scratch = DecodeScratch::new();

    // The scan body must not allocate either: fold plain sums.
    let scan = |scratch: &mut DecodeScratch| {
        let mut rows_seen = 0usize;
        let mut download_sum = 0.0f64;
        let stats = reader
            .scan_counted(&selection, scratch, |view| {
                rows_seen += view.rows();
                for v in view.download().iter() {
                    download_sum += v;
                }
                Ok(())
            })
            .expect("scan succeeds");
        (stats, rows_seen, download_sum)
    };

    // Warm-up: the scratch arena grows to the widest block here.
    let (warm, warm_allocs) = allocations_during(|| scan(&mut scratch));
    assert!(warm.1 > 0, "selection matched no rows");
    assert!(warm_allocs > 0, "cold scan must populate the scratch arena");

    // The warm scan re-reads every matched block — and touches the heap
    // exactly zero times. Not zero-per-block: zero, full stop.
    let (hot, hot_allocs) = allocations_during(|| scan(&mut scratch));
    assert_eq!(hot.0, warm.0, "warm scan changed the ReadStats");
    assert_eq!(hot.1, warm.1);
    assert_eq!(hot.2, warm.2);
    assert_eq!(
        hot_allocs, 0,
        "warm scan over {} blocks performed {hot_allocs} heap allocations",
        hot.0.blocks_decoded
    );
    assert!(
        hot.0.blocks_decoded >= 4,
        "guard must cover a multi-block scan, saw {}",
        hot.0.blocks_decoded
    );
}
