//! Archive round-trip equivalence: the whole battery, byte for byte,
//! from parsed files.
//!
//! The tentpole claim of the `DataSource` layer is that nothing in the
//! analysis depends on *how* the datasets arrived — a freshly generated
//! world and the same world dumped to its native archive formats and
//! parsed back must drive every experiment to identical output. This
//! suite dumps the fixed-seed test world once *per NDT shard format*
//! (text `.tsv` and columnar `.ndtc`), reloads each tree through
//! [`DataSource::from_archive`], and requires the canonical TSV render
//! of all 22 paper artifacts *and* the three extensions to match both
//! the in-memory run and the checked-in `tests/golden/` fixtures.

use lacnet::core::render::canonical_tsv;
use lacnet::core::{datasets, experiments, extensions, DataSource, DumpOptions};
use lacnet::crisis::{World, WorldConfig};
use lacnet::mlab::ShardFormat;
use std::path::PathBuf;
use std::sync::OnceLock;

fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| World::generate(WorldConfig::test()))
}

/// Dump the test world once per shard format and keep the archive-backed
/// source for every test in the binary — each dump tree holds a few
/// thousand files, so the suite parses each a single time.
fn archive_source_for(format: ShardFormat) -> &'static DataSource<'static> {
    static TEXT: OnceLock<DataSource<'static>> = OnceLock::new();
    static COLUMNAR: OnceLock<DataSource<'static>> = OnceLock::new();
    let cell = match format {
        ShardFormat::Text => &TEXT,
        ShardFormat::Columnar => &COLUMNAR,
    };
    cell.get_or_init(|| {
        let dir =
            std::env::temp_dir().join(format!("lacnet-roundtrip-{format}-{}", std::process::id()));
        let options = DumpOptions {
            shard_format: format,
            force: false,
        };
        datasets::dump_with(world(), &dir, options).expect("dump succeeds");
        DataSource::from_archive_with(&dir, Some(format)).expect("archive loads")
    })
}

fn archive_source() -> &'static DataSource<'static> {
    archive_source_for(ShardFormat::Text)
}

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Battery + extensions from the archive backend, render order stable.
fn archive_results_for(format: ShardFormat) -> Vec<lacnet::core::ExperimentResult> {
    let src = archive_source_for(format);
    let mut results = experiments::all(src);
    results.extend(extensions::all(src));
    results
}

fn archive_results() -> Vec<lacnet::core::ExperimentResult> {
    archive_results_for(ShardFormat::Text)
}

#[test]
fn archive_battery_matches_in_memory_byte_for_byte() {
    let in_memory = DataSource::in_memory(world());
    let mut reference = experiments::all(&in_memory);
    reference.extend(extensions::all(&in_memory));
    let reloaded = archive_results();
    assert_eq!(reference.len(), reloaded.len());
    for (mem, arch) in reference.iter().zip(&reloaded) {
        assert_eq!(mem.id, arch.id, "battery order must not depend on backend");
        assert_eq!(
            canonical_tsv(mem),
            canonical_tsv(arch),
            "{} diverges between the in-memory and archive backends",
            mem.id
        );
    }
}

#[test]
fn archive_battery_matches_golden_fixtures() {
    // Stronger than backend agreement: the archive run must land on the
    // exact bytes the golden regression fence holds, so a format change
    // that breaks parsing cannot hide behind a matching in-memory change.
    for result in archive_results() {
        let path = fixture_dir().join(format!("{}.tsv", result.id));
        let expected = std::fs::read_to_string(&path).unwrap_or_else(|_| {
            panic!(
                "missing golden fixture {}; run `UPDATE_GOLDEN=1 cargo test --test golden`",
                path.display()
            )
        });
        assert_eq!(
            canonical_tsv(&result),
            expected,
            "{} from the archive diverges from its golden fixture",
            result.id
        );
    }
}

#[test]
fn columnar_archive_battery_matches_text_archive_byte_for_byte() {
    // The columnar `.ndtc` shard encoding must be invisible to the
    // battery: both formats decode into the identical observation
    // sequence, so every artifact renders byte-for-byte the same.
    let text = archive_results_for(ShardFormat::Text);
    let columnar = archive_results_for(ShardFormat::Columnar);
    assert_eq!(text.len(), columnar.len());
    for (t, c) in text.iter().zip(&columnar) {
        assert_eq!(t.id, c.id);
        assert_eq!(
            canonical_tsv(t),
            canonical_tsv(c),
            "{} diverges between text and columnar NDT shards",
            t.id
        );
    }
}

#[test]
fn columnar_archive_battery_matches_golden_fixtures() {
    for result in archive_results_for(ShardFormat::Columnar) {
        let path = fixture_dir().join(format!("{}.tsv", result.id));
        let expected = std::fs::read_to_string(&path).unwrap_or_else(|_| {
            panic!(
                "missing golden fixture {}; run `UPDATE_GOLDEN=1 cargo test --test golden`",
                path.display()
            )
        });
        assert_eq!(
            canonical_tsv(&result),
            expected,
            "{} from the columnar archive diverges from its golden fixture",
            result.id
        );
    }
}

#[test]
fn archive_backend_reports_itself() {
    assert_eq!(archive_source().backend(), "archive");
    assert_eq!(archive_source().config(), &world().config);
    assert_eq!(
        archive_source_for(ShardFormat::Columnar).backend(),
        "archive"
    );
}
