//! Archive round-trip equivalence: the whole battery, byte for byte,
//! from parsed files.
//!
//! The tentpole claim of the `DataSource` layer is that nothing in the
//! analysis depends on *how* the datasets arrived — a freshly generated
//! world and the same world dumped to its native archive formats and
//! parsed back must drive every experiment to identical output. This
//! suite dumps the fixed-seed test world once *per NDT shard format*
//! (text `.tsv` and columnar `.ndtc`), reloads each tree through
//! [`DataSource::from_archive`], and requires the canonical TSV render
//! of all 22 paper artifacts *and* the three extensions to match both
//! the in-memory run and the checked-in `tests/golden/` fixtures.

use lacnet::core::render::canonical_tsv;
use lacnet::core::{datasets, experiments, extensions, DataSource, DumpOptions};
use lacnet::crisis::{World, WorldConfig};
use lacnet::mlab::ShardFormat;
use std::path::PathBuf;
use std::sync::OnceLock;

fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| World::generate(WorldConfig::test()))
}

/// Dump the test world once per shard format and keep the archive-backed
/// source for every test in the binary — each dump tree holds a few
/// thousand files, so the suite parses each a single time.
fn archive_source_for(format: ShardFormat) -> &'static DataSource<'static> {
    static TEXT: OnceLock<DataSource<'static>> = OnceLock::new();
    static COLUMNAR: OnceLock<DataSource<'static>> = OnceLock::new();
    let cell = match format {
        ShardFormat::Text => &TEXT,
        ShardFormat::Columnar => &COLUMNAR,
    };
    cell.get_or_init(|| {
        let dir =
            std::env::temp_dir().join(format!("lacnet-roundtrip-{format}-{}", std::process::id()));
        let options = DumpOptions {
            shard_format: format,
            ..DumpOptions::default()
        };
        datasets::dump_with(world(), &dir, options).expect("dump succeeds");
        DataSource::from_archive_with(&dir, Some(format)).expect("archive loads")
    })
}

/// A columnar tree written in the frozen v1 single-block container
/// (what `lacnet-gen --ndtc-v1` produces) — the legacy layout the
/// version-dispatch read path must keep serving.
fn v1_archive_source() -> &'static DataSource<'static> {
    static V1: OnceLock<DataSource<'static>> = OnceLock::new();
    V1.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("lacnet-roundtrip-v1-{}", std::process::id()));
        let options = DumpOptions {
            shard_format: ShardFormat::Columnar,
            columnar_v1: true,
            ..DumpOptions::default()
        };
        datasets::dump_with(world(), &dir, options).expect("v1 dump succeeds");
        DataSource::from_archive_with(&dir, Some(ShardFormat::Columnar)).expect("v1 archive loads")
    })
}

/// A mid-migration tree: a v2 dump with every Venezuelan shard resealed
/// in the v1 container. Loading it exercises both decoders inside one
/// archive walk — exactly what an interrupted re-dump leaves behind.
fn mixed_archive_source() -> &'static DataSource<'static> {
    static MIXED: OnceLock<DataSource<'static>> = OnceLock::new();
    MIXED.get_or_init(|| {
        let dir =
            std::env::temp_dir().join(format!("lacnet-roundtrip-mixed-{}", std::process::id()));
        let options = DumpOptions {
            shard_format: ShardFormat::Columnar,
            ..DumpOptions::default()
        };
        datasets::dump_with(world(), &dir, options).expect("mixed dump succeeds");
        let mut resealed = 0usize;
        for entry in std::fs::read_dir(dir.join("mlab/VE")).expect("VE shard dir") {
            let path = entry.expect("dir entry").path();
            if path.extension().and_then(|e| e.to_str()) != Some("ndtc") {
                continue;
            }
            let bytes = std::fs::read(&path).expect("shard bytes");
            let batch = lacnet::mlab::columnar::decode(&bytes).expect("shard decodes");
            std::fs::write(&path, lacnet::mlab::columnar::encode(&batch)).expect("v1 reseal");
            resealed += 1;
        }
        assert!(resealed > 0, "mixed tree resealed no shards");
        DataSource::from_archive_with(&dir, Some(ShardFormat::Columnar))
            .expect("mixed archive loads")
    })
}

fn archive_source() -> &'static DataSource<'static> {
    archive_source_for(ShardFormat::Text)
}

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Battery + extensions from the archive backend, render order stable.
fn archive_results_for(format: ShardFormat) -> Vec<lacnet::core::ExperimentResult> {
    let src = archive_source_for(format);
    let mut results = experiments::all(src);
    results.extend(extensions::all(src));
    results
}

fn archive_results() -> Vec<lacnet::core::ExperimentResult> {
    archive_results_for(ShardFormat::Text)
}

#[test]
fn archive_battery_matches_in_memory_byte_for_byte() {
    let in_memory = DataSource::in_memory(world());
    let mut reference = experiments::all(&in_memory);
    reference.extend(extensions::all(&in_memory));
    let reloaded = archive_results();
    assert_eq!(reference.len(), reloaded.len());
    for (mem, arch) in reference.iter().zip(&reloaded) {
        assert_eq!(mem.id, arch.id, "battery order must not depend on backend");
        assert_eq!(
            canonical_tsv(mem),
            canonical_tsv(arch),
            "{} diverges between the in-memory and archive backends",
            mem.id
        );
    }
}

#[test]
fn archive_battery_matches_golden_fixtures() {
    // Stronger than backend agreement: the archive run must land on the
    // exact bytes the golden regression fence holds, so a format change
    // that breaks parsing cannot hide behind a matching in-memory change.
    for result in archive_results() {
        let path = fixture_dir().join(format!("{}.tsv", result.id));
        let expected = std::fs::read_to_string(&path).unwrap_or_else(|_| {
            panic!(
                "missing golden fixture {}; run `UPDATE_GOLDEN=1 cargo test --test golden`",
                path.display()
            )
        });
        assert_eq!(
            canonical_tsv(&result),
            expected,
            "{} from the archive diverges from its golden fixture",
            result.id
        );
    }
}

#[test]
fn columnar_archive_battery_matches_text_archive_byte_for_byte() {
    // The columnar `.ndtc` shard encoding must be invisible to the
    // battery: both formats decode into the identical observation
    // sequence, so every artifact renders byte-for-byte the same.
    let text = archive_results_for(ShardFormat::Text);
    let columnar = archive_results_for(ShardFormat::Columnar);
    assert_eq!(text.len(), columnar.len());
    for (t, c) in text.iter().zip(&columnar) {
        assert_eq!(t.id, c.id);
        assert_eq!(
            canonical_tsv(t),
            canonical_tsv(c),
            "{} diverges between text and columnar NDT shards",
            t.id
        );
    }
}

#[test]
fn columnar_archive_battery_matches_golden_fixtures() {
    for result in archive_results_for(ShardFormat::Columnar) {
        let path = fixture_dir().join(format!("{}.tsv", result.id));
        let expected = std::fs::read_to_string(&path).unwrap_or_else(|_| {
            panic!(
                "missing golden fixture {}; run `UPDATE_GOLDEN=1 cargo test --test golden`",
                path.display()
            )
        });
        assert_eq!(
            canonical_tsv(&result),
            expected,
            "{} from the columnar archive diverges from its golden fixture",
            result.id
        );
    }
}

#[test]
fn v1_and_mixed_columnar_trees_serve_the_identical_battery() {
    // The container-version matrix: pure-v1 and mixed v1/v2 trees must
    // land the whole battery on the same bytes as the text tree — the
    // format-evolution contract (readers dispatch on the frozen header
    // byte; writers never change what decoders observe).
    let text = archive_results_for(ShardFormat::Text);
    for (label, src) in [
        ("v1", v1_archive_source()),
        ("mixed", mixed_archive_source()),
    ] {
        let mut results = experiments::all(src);
        results.extend(extensions::all(src));
        assert_eq!(text.len(), results.len());
        for (t, r) in text.iter().zip(&results) {
            assert_eq!(t.id, r.id, "battery order differs on the {label} tree");
            assert_eq!(
                canonical_tsv(t),
                canonical_tsv(r),
                "{} diverges between the text tree and the {label} columnar tree",
                t.id
            );
        }
    }
}

#[test]
fn single_month_query_decodes_only_the_matching_shard_bytes() {
    use lacnet::types::country;
    let src = archive_source_for(ShardFormat::Columnar);
    let (month, _) = src
        .mlab()
        .median_series(country::VE)
        .last()
        .expect("test world has VE data");
    let stats = src
        .ndt_month_stats(country::VE, month)
        .expect("query succeeds")
        .expect("shard exists");
    assert_eq!(stats.format, "columnar-v2");
    assert!(stats.rows > 0);
    // The counting reader saw only the matching blocks, and of those
    // only the download column the query asked for.
    assert!(stats.read.blocks_decoded >= 1);
    assert!(stats.read.blocks_decoded <= stats.read.blocks_total);
    assert_eq!(stats.read.columns_decoded, stats.read.blocks_decoded);
    // The decoded bytes are a strict subset of the one matching shard
    // and a sliver of the tree's whole columnar payload.
    let DataSource::Archive(archive) = src else {
        panic!("columnar source is archive-backed");
    };
    let shard_len = std::fs::read(archive.root().join(format!("mlab/VE/ndt-{month}.ndtc")))
        .expect("matching shard")
        .len();
    let mut tree_total = 0usize;
    for country_dir in std::fs::read_dir(archive.root().join("mlab")).expect("mlab dir") {
        let country_dir = country_dir.expect("entry").path();
        if !country_dir.is_dir() {
            continue;
        }
        for shard in std::fs::read_dir(&country_dir).expect("country dir") {
            let shard = shard.expect("entry").path();
            if shard.extension().and_then(|e| e.to_str()) == Some("ndtc") {
                tree_total += std::fs::metadata(&shard).expect("metadata").len() as usize;
            }
        }
    }
    assert!(
        stats.read.bytes_decoded < shard_len,
        "query decoded {} of the {shard_len}-byte shard",
        stats.read.bytes_decoded
    );
    assert!(
        stats.read.bytes_decoded * 4 < tree_total,
        "query decoded {} of the {tree_total}-byte tree",
        stats.read.bytes_decoded
    );
    // Every storage format answers the same numbers: the v1 container
    // and the text rows take their full-decode paths and still land on
    // the identical count and bit-identical P² median.
    for (label, other) in [
        ("columnar-v1", v1_archive_source()),
        ("text", archive_source_for(ShardFormat::Text)),
    ] {
        let answer = other
            .ndt_month_stats(country::VE, month)
            .expect("query succeeds")
            .expect("shard exists");
        assert_eq!(answer.format, label);
        assert_eq!(answer.rows, stats.rows, "{label} row count diverges");
        assert_eq!(
            answer.median_download, stats.median_download,
            "{label} median diverges"
        );
    }
}

#[test]
fn range_query_equals_the_merge_of_its_single_month_queries() {
    use lacnet::types::country;
    let src = archive_source_for(ShardFormat::Columnar);
    let series: Vec<_> = src.mlab().median_series(country::VE).iter().collect();
    assert!(series.len() >= 4, "test world spans months");
    let (from, _) = series[series.len() - 4];
    let (to, _) = *series.last().unwrap();

    let range = src
        .ndt_range_stats(country::VE, from, to)
        .expect("range query succeeds");
    assert_eq!(range.months_queried, 4);
    assert_eq!(range.months.len(), 4);

    // The merged answer is exactly the fold of the single-month queries:
    // per-month stats, the row total, and the absorbed ReadStats — the
    // parallel fan-out with plan-order merge is observationally identical
    // to a sequential month walk.
    let mut rows = 0usize;
    let mut read = lacnet::mlab::ReadStats::default();
    let mut median_sum = 0.0f64;
    let mut medians = 0usize;
    for &(month, ref merged) in &range.months {
        let single = src
            .ndt_month_stats(country::VE, month)
            .expect("query succeeds")
            .expect("shard exists");
        assert_eq!(merged, &single, "{month} diverges inside the range");
        rows += single.rows;
        read.absorb(single.read);
        if let Some(m) = single.median_download {
            median_sum += m;
            medians += 1;
        }
    }
    assert_eq!(range.rows, rows);
    assert_eq!(range.read, read);
    assert_eq!(
        range.mean_monthly_median,
        (medians > 0).then(|| median_sum / medians as f64)
    );

    // The fan-out decoded only the download column of the matching
    // blocks across every queried shard.
    assert!(range.read.blocks_decoded >= 4);
    assert_eq!(range.read.columns_decoded, range.read.blocks_decoded);

    // Every storage format answers the same numbers through the same
    // range entry point — full-decode paths included.
    for other in [v1_archive_source(), archive_source_for(ShardFormat::Text)] {
        let answer = other
            .ndt_range_stats(country::VE, from, to)
            .expect("range query succeeds");
        assert_eq!(answer.rows, range.rows);
        assert_eq!(answer.months.len(), range.months.len());
        for ((m_a, a), (m_b, b)) in answer.months.iter().zip(&range.months) {
            assert_eq!(m_a, m_b);
            assert_eq!(a.rows, b.rows, "{m_a}");
            assert_eq!(a.median_download, b.median_download, "{m_a}");
        }
        assert_eq!(answer.mean_monthly_median, range.mean_monthly_median);
    }
}

#[test]
fn archive_backend_reports_itself() {
    assert_eq!(archive_source().backend(), "archive");
    assert_eq!(archive_source().config(), &world().config);
    assert_eq!(
        archive_source_for(ShardFormat::Columnar).backend(),
        "archive"
    );
}
