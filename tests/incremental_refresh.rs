//! Incremental archive refresh: a re-dump regenerates only the NDT
//! shards whose inputs changed.
//!
//! The dump records every shard's input fingerprint (seed, effective
//! per-country volume scale, on-disk format) in `mlab/manifest.tsv`.
//! This suite proves the three properties that make the manifest
//! trustworthy:
//!
//! 1. a re-dump of an unchanged configuration rewrites **zero** shard
//!    files (their mtimes are untouched);
//! 2. touching one country's volume knob regenerates **only** that
//!    country's shards — every other shard file keeps its mtime and
//!    bytes;
//! 3. the incrementally refreshed tree drives the full experiment
//!    battery to byte-identical output with a from-scratch dump of the
//!    same configuration.

use lacnet::core::render::canonical_tsv;
use lacnet::core::{datasets, experiments, extensions, DataSource};
use lacnet::crisis::config::windows;
use lacnet::crisis::{bandwidth, Scenario, World, WorldConfig};
use lacnet::types::country;
use std::collections::BTreeMap;
use std::path::Path;
use std::time::SystemTime;

/// (relative shard path -> mtime) for every NDT shard file in the tree.
fn shard_mtimes(root: &Path, config: &WorldConfig) -> BTreeMap<String, SystemTime> {
    bandwidth::shard_plan(windows::mlab_start(), config.end)
        .into_iter()
        .map(|shard| {
            let rel = datasets::mlab_shard_path(shard);
            let mtime = std::fs::metadata(root.join(&rel))
                .and_then(|m| m.modified())
                .expect("shard file exists with a readable mtime");
            (rel, mtime)
        })
        .collect()
}

fn battery(src: &DataSource) -> Vec<String> {
    let mut results = experiments::all(src);
    results.extend(extensions::all(src));
    results.iter().map(canonical_tsv).collect()
}

#[test]
fn touching_one_country_refreshes_only_its_shards() {
    let base_config = WorldConfig::test();
    let boosted_config = WorldConfig {
        mlab_country_boost: Some((country::VE, 2.0)),
        ..base_config
    };
    let dir = std::env::temp_dir().join(format!("lacnet-incr-{}", std::process::id()));
    let scratch = std::env::temp_dir().join(format!("lacnet-incr-scratch-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&scratch).ok();

    // Property 1: a re-dump of the same configuration rewrites nothing.
    let base = World::generate(base_config);
    let first = datasets::dump(&base, &dir).expect("initial dump");
    assert_eq!(first.shards_skipped, 0);
    let before = shard_mtimes(&dir, &base_config);
    let again = datasets::dump(&base, &dir).expect("unchanged re-dump");
    assert_eq!(again.shards_written, 0, "unchanged config rewrote shards");
    assert_eq!(again.shards_skipped, first.shards_written);
    assert_eq!(
        shard_mtimes(&dir, &base_config),
        before,
        "an unchanged re-dump must not touch any shard file"
    );

    // Property 2: boosting VE's volume regenerates exactly VE's shards.
    let boosted = World::generate(boosted_config);
    let refreshed = datasets::dump(&boosted, &dir).expect("boosted re-dump");
    let plan = bandwidth::shard_plan(windows::mlab_start(), boosted_config.end);
    let ve_shards = plan.iter().filter(|&&(cc, _)| cc == country::VE).count();
    assert_eq!(refreshed.shards_written, ve_shards);
    assert_eq!(refreshed.shards_skipped, plan.len() - ve_shards);
    let after = shard_mtimes(&dir, &boosted_config);
    for (rel, mtime) in &before {
        if rel.starts_with("mlab/VE/") {
            continue;
        }
        assert_eq!(
            after[rel], *mtime,
            "{rel} was rewritten although its inputs did not change"
        );
    }
    let ve_sample = "mlab/VE/ndt-2019-03.tsv";

    // Property 3: the refreshed tree and a from-scratch dump of the
    // boosted world agree on every battery artifact, byte for byte.
    datasets::dump(&boosted, &scratch).expect("from-scratch dump");
    assert_eq!(
        std::fs::read(dir.join(ve_sample)).unwrap(),
        std::fs::read(scratch.join(ve_sample)).unwrap(),
        "refreshed VE shard must equal the from-scratch bytes"
    );
    let refreshed_src = DataSource::from_archive(&dir).expect("refreshed tree loads");
    let scratch_src = DataSource::from_archive(&scratch).expect("scratch tree loads");
    assert_eq!(
        battery(&refreshed_src),
        battery(&scratch_src),
        "incremental refresh changed battery output"
    );

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&scratch).ok();
}

/// Every file of an explicit `--scenario venezuela` dump must equal the
/// no-flag dump byte for byte — the byte-identity contract of the
/// scenario layer — and switching scenarios must invalidate every shard
/// while a same-scenario re-run invalidates none.
#[test]
fn scenario_switch_refreshes_every_shard_and_default_is_byte_identical() {
    let config = WorldConfig::test();
    let dir = std::env::temp_dir().join(format!("lacnet-scn-{}", std::process::id()));
    let explicit = std::env::temp_dir().join(format!("lacnet-scn-explicit-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&explicit).ok();

    // Byte identity: `World::generate` and an explicit default scenario
    // dump the same tree — same file set, same bytes, no sidecar.
    let base = World::generate(config);
    let summary = datasets::dump(&base, &dir).expect("no-flag dump");
    let default_world = World::generate_with(config, Scenario::venezuela());
    let explicit_summary = datasets::dump(&default_world, &explicit).expect("explicit dump");
    let names = |s: &datasets::DumpSummary| {
        let mut v = s.files.clone();
        v.sort();
        v
    };
    assert_eq!(names(&summary), names(&explicit_summary));
    for rel in &summary.files {
        assert_eq!(
            std::fs::read(dir.join(rel)).unwrap(),
            std::fs::read(explicit.join(rel)).unwrap(),
            "{rel}: explicit default-scenario dump diverged from the no-flag dump"
        );
    }
    assert!(
        !dir.join("world/scenario.toml").exists(),
        "default scenario must not write a sidecar"
    );

    // Switching scenarios rewrites every shard: the scenario fingerprint
    // is part of each manifest record.
    let plan_len = bandwidth::shard_plan(windows::mlab_start(), config.end).len();
    let cut = World::generate_with(config, Scenario::builtin("cable-cut").expect("builtin"));
    let switched = datasets::dump(&cut, &dir).expect("scenario switch re-dump");
    assert_eq!(
        switched.shards_written, plan_len,
        "a scenario switch must refresh every NDT shard"
    );
    assert!(
        dir.join("world/scenario.toml").exists(),
        "non-default scenario must write its sidecar"
    );

    // A same-scenario re-run is a no-op on the shard files.
    let again = datasets::dump(&cut, &dir).expect("same-scenario re-dump");
    assert_eq!(
        again.shards_written, 0,
        "same-scenario re-run rewrote shards"
    );
    assert_eq!(again.shards_skipped, plan_len);

    // The loader reapplies the sidecar: the reloaded archive reports the
    // non-default scenario and reproduces its battery output.
    let reloaded = DataSource::from_archive(&dir).expect("scenario tree loads");
    assert_eq!(reloaded.scenario().name, "cable-cut");
    assert!(!reloaded.scenario().is_default());
    let in_memory = DataSource::in_memory(&cut);
    assert_eq!(
        battery(&reloaded),
        battery(&in_memory),
        "archive round-trip changed a scenario battery artifact"
    );

    // Dumping the default world back over the scenario tree removes the
    // stale sidecar and refreshes every shard again.
    let restored = datasets::dump(&base, &dir).expect("restore default dump");
    assert_eq!(restored.shards_written, plan_len);
    assert!(
        !dir.join("world/scenario.toml").exists(),
        "stale sidecar must be removed when the default scenario returns"
    );

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&explicit).ok();
}
