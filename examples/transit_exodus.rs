//! The Fig. 8 / Fig. 9 pipeline on raw serial-1 text: build the monthly
//! topology, serialise each snapshot to the CAIDA format, parse it back,
//! and compute CANTV's upstream history from the parsed archive — the
//! same byte-level round trip a consumer of the real archive performs.
//!
//! ```text
//! cargo run --example transit_exodus --release
//! ```

use lacnet::bgp::{analytics, serial1, TopologyArchive};
use lacnet::crisis::economy::Economy;
use lacnet::crisis::operators::Operators;
use lacnet::crisis::topology::TopologyBuilder;
use lacnet::types::{Asn, MonthStamp};

fn main() {
    let ops = Operators::generate(42);
    let eco = Economy::generate(MonthStamp::new(1980, 1), MonthStamp::new(2024, 2));
    let builder = TopologyBuilder::new(&ops, &eco);

    // Emit one serial-1 file per January and re-load it, as if reading
    // the CAIDA archive from disk.
    let mut archive = TopologyArchive::new();
    let mut bytes = 0usize;
    for year in 1998..=2024 {
        let m = MonthStamp::new(year, 1);
        let graph = builder.snapshot(m);
        let text = serial1::to_text(&graph.edges(), &format!("lacnet world, {m}"));
        bytes += text.len();
        archive
            .insert_serial1(m, &text)
            .expect("generated serial-1 parses");
    }
    println!(
        "round-tripped {} snapshots ({} KiB of serial-1 text)\n",
        archive.len(),
        bytes / 1024
    );

    // CANTV's upstream count per year.
    let cantv = Asn(8048);
    let up = analytics::upstream_series(&archive, cantv);
    println!("CANTV-AS8048 upstream providers per January:");
    for (m, v) in up.iter() {
        let bar = "#".repeat(v as usize);
        println!("  {} {:>2}  {bar}", m.year(), v as u32);
    }

    // The departures, with who left when.
    println!("\nproviders that stopped serving CANTV:");
    for (asn, last) in analytics::departed_providers(&archive, cantv) {
        let name = match asn.raw() {
            701 => "Verizon",
            1239 => "Sprint",
            7018 => "AT&T",
            3257 | 4436 => "GTT",
            3356 | 3549 => "Level3/Lumen",
            1299 => "Arelion",
            12956 => "Telxius",
            _ => "(regional)",
        };
        println!("  {asn:<9} {name:<14} last seen {last}");
    }
    println!("\nSurvivors at the end: Telecom Italia (6762), Columbus (23520),");
    println!("V.tal (52320), Orange (5511, returned) and Gold Data (28007) — §6.1.");
}
