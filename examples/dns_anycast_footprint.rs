//! The Fig. 6 / Fig. 16 pipeline: run the CHAOS TXT built-in campaign,
//! decode the per-letter instance identities, and watch Venezuela's root
//! replicas disappear from the map.
//!
//! ```text
//! cargo run --example dns_anycast_footprint --release
//! ```

use lacnet::atlas::{campaign, chaos};
use lacnet::crisis::dns;
use lacnet::types::{country, MonthStamp};

fn main() {
    let world = dns::build_dns_world(42);
    let camp = campaign::ChaosCampaign::new(&world.probes, &world.roots);

    // A few raw observations, to show what the campaign actually records.
    println!("sample CHAOS TXT responses from Venezuelan probes (2017-01):");
    let obs = camp.run_month(MonthStamp::new(2017, 1));
    for o in obs
        .iter()
        .filter(|o| o.probe_country == country::VE)
        .take(6)
    {
        let decoded = chaos::decode(o.letter, &o.txt).expect("generated identities decode");
        println!(
            "  probe {:>4}  {}-root  {:<28} → site {:<4} country {:?}",
            o.probe,
            o.letter,
            o.txt,
            decoded.site,
            decoded.country().map(|c| c.to_string()),
        );
    }

    // Venezuela's replica count over the window: 2 → 1 → 0.
    println!("\nroot replicas geolocated to Venezuela:");
    for (y, m) in [(2016, 1), (2018, 1), (2019, 1), (2020, 1), (2022, 1)] {
        let month = MonthStamp::new(y, m);
        let obs = camp.run_month(month);
        let by_country = campaign::replicas_by_country(&obs);
        let n = by_country.get(&country::VE).map(|s| s.len()).unwrap_or(0);
        let names: Vec<&String> = by_country
            .get(&country::VE)
            .map(|s| s.iter().collect())
            .unwrap_or_default();
        println!("  {month}: {n} {names:?}");
    }

    // Who serves Venezuela once the domestic nodes are gone?
    println!("\norigins serving Venezuelan probes in 2023-01:");
    let obs: Vec<_> = camp
        .run_month(MonthStamp::new(2023, 1))
        .into_iter()
        .filter(|o| o.probe_country == country::VE)
        .collect();
    let mut origins: Vec<(String, usize)> = campaign::replicas_by_country(&obs)
        .into_iter()
        .map(|(cc, replicas)| (cc.to_string(), replicas.len()))
        .collect();
    origins.sort_by_key(|o| std::cmp::Reverse(o.1));
    for (cc, n) in origins {
        println!("  {cc}: {n} distinct replicas");
    }
    println!("\nThe US dominates, with European operators for the letters that");
    println!("keep no US-east presence — the Appendix E picture.");
}
