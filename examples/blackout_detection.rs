//! Beyond the paper: detect the 2019 Venezuelan blackouts from probe
//! reachability alone — the §9 future-work direction, exercised against
//! the generated world's daily connectivity data.
//!
//! ```text
//! cargo run --example blackout_detection
//! ```

use lacnet::atlas::outages::{detect_all, DetectorConfig};
use lacnet::crisis::{blackouts, dns};
use lacnet::types::{country, Date};

fn main() {
    let world = dns::build_dns_world(42);
    let series =
        blackouts::daily_reachability(&world, Date::ymd(2019, 1, 1), Date::ymd(2019, 12, 31), 42);

    // March 2019, day by day, as the platform saw it.
    println!("connected Venezuelan probes, March 2019:");
    let ve = &series[&country::VE];
    for d in 1..=31u8 {
        let day = Date::ymd(2019, 3, d);
        let n = ve.get(day).unwrap_or(0);
        println!("  {day}  {:2}  {}", n, "#".repeat(n as usize));
    }

    // What the detector finds across the whole region.
    let detected = detect_all(&series, DetectorConfig::default());
    println!("\ndetected national outages in 2019:");
    for (cc, events) in &detected {
        for e in events {
            println!(
                "  {cc}: {} → {} ({} days, {:.0}% of probes dark)",
                e.start,
                e.end,
                e.duration_days(),
                e.depth() * 100.0
            );
        }
    }
    assert!(detected.contains_key(&country::VE));
    println!("\nOnly Venezuela shows national-scale events — the March 7 Guri");
    println!("blackout, the March 25 relapse, and the July 22 event.");
}
