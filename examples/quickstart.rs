//! Quickstart: generate a world and reproduce the paper's headline
//! artifacts.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use lacnet::core::{experiments, render, DataSource};
use lacnet::crisis::{World, WorldConfig};

fn main() {
    // A generated world stands in for the study's gated datasets: one
    // macro-economy drives every infrastructure signal, and each dataset
    // is emitted in its real format. Everything is deterministic in the
    // seed.
    println!("generating the world (this builds ~26 years of monthly datasets)…");
    let world = World::generate(WorldConfig::default());
    let src = DataSource::in_memory(&world);

    // Reproduce three headline artifacts.
    let headline = [
        experiments::fig01_macro::run(&src),
        experiments::fig08_cantv_degree::run(&src),
        experiments::fig11_bandwidth::run(&src),
    ];
    for result in &headline {
        print!("{}", render::render_result(result));
    }

    let matched = headline.iter().filter(|r| r.all_match()).count();
    println!(
        "\n{matched}/{} headline experiments match the paper.",
        headline.len()
    );
    println!("Run the full battery with: cargo run -p lacnet-core --bin vzla-report --release");
}
