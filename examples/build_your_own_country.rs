//! The substrates are not Venezuela-specific: this example assembles a
//! tiny fictional country ("Meridia") from the raw building blocks — an
//! AS topology with valley-free routing, a delegation ledger, probes and
//! an anycast fleet — and answers the study's questions about it.
//!
//! ```text
//! cargo run --example build_your_own_country
//! ```

use lacnet::atlas::{AnycastFleet, AnycastSite, Probe, SiteScope};
use lacnet::bgp::propagation::RouteSim;
use lacnet::bgp::{AsGraph, RelEdge};
use lacnet::registry::ledger::{Allocation, AllocationLedger, PoolCarver};
use lacnet::types::net::net;
use lacnet::types::{country, geo, Asn, CountryCode, Date, GeoPoint, MonthStamp};

fn main() {
    // Meridia: a small coastal economy with one incumbent and two ISPs.
    // (Using an ISO code from the region so the registry accepts it.)
    let meridia: CountryCode = country::CR;
    let incumbent = Asn(65_001);
    let isp_a = Asn(65_002);
    let isp_b = Asn(65_003);

    // 1. Interdomain topology: the incumbent buys from two tier-1s, the
    //    ISPs buy from the incumbent, and the ISPs peer with each other.
    let graph = AsGraph::from_edges([
        RelEdge::transit(Asn(3356), incumbent),
        RelEdge::transit(Asn(1299), incumbent),
        RelEdge::transit(incumbent, isp_a),
        RelEdge::transit(incumbent, isp_b),
        RelEdge::peering(isp_a, isp_b),
    ]);
    let sim = RouteSim::new(&graph);
    let out = sim.propagate(isp_a);
    println!(
        "Meridia's topology: {} ASes, {} edges",
        graph.node_count(),
        graph.edge_count()
    );
    println!(
        "  ISP-A's announcement reaches {} ASes; tier-1 visibility {:.0}%",
        out.reach_count(),
        out.visibility(&[Asn(3356), Asn(1299)]) * 100.0
    );
    println!(
        "  ISP-B hears ISP-A via {:?} (the peering link, not transit)",
        out.route(isp_b).expect("route exists").kind
    );

    // 2. Address space: carve a national pool, respecting overlaps.
    let mut carver = PoolCarver::new(net("203.0.0.0/12"));
    let mut ledger = AllocationLedger::new();
    for (holder, len, year) in [
        (incumbent, 16u8, 2002),
        (isp_a, 18, 2008),
        (isp_b, 19, 2012),
    ] {
        let prefix = carver.carve(len).expect("pool has room");
        ledger
            .allocate(Allocation {
                country: meridia,
                holder,
                prefix,
                date: Date::ymd(year, 6, 1),
            })
            .expect("no overlaps by construction");
    }
    println!("\nMeridia's registry (as a LACNIC-format delegation file):");
    let file = ledger.to_delegation_file(Date::ymd(2024, 1, 1));
    for line in file.to_text(Date::ymd(2024, 1, 1)).lines().take(8) {
        println!("  {line}");
    }

    // 3. Measurement: two probes and an anycast service with one domestic
    //    node. The capital probe is hauled abroad by the incumbent; the
    //    border probe routes directly.
    let mk_probe = |id, lat, lon, egress: Option<GeoPoint>| Probe {
        id,
        country: meridia,
        location: GeoPoint::new(lat, lon),
        asn: incumbent,
        active_since: MonthStamp::new(2020, 1),
        active_until: None,
        egress,
    };
    let capital = mk_probe(1, 9.93, -84.08, Some(geo::airport("mia").unwrap().location));
    let border = mk_probe(2, 8.60, -83.10, None);
    let fleet = AnycastFleet::new(vec![
        AnycastSite {
            id: "domestic".into(),
            location: GeoPoint::new(9.93, -84.08),
            scope: SiteScope::Domestic(meridia),
        },
        AnycastSite {
            id: "miami".into(),
            location: geo::airport("mia").unwrap().location,
            scope: SiteScope::Global,
        },
    ]);
    println!("\nanycast catchment:");
    for p in [&capital, &border] {
        let site = fleet.catch(p).expect("a site is visible");
        println!(
            "  probe {} → {} ({:.0} km path)",
            p.id,
            site.id,
            site.path_km(p)
        );
    }
    println!("\nEvery piece above is the same API the Venezuelan reproduction uses.");
}
