//! The Fig. 11 pipeline, piece by piece: generate crowdsourced NDT rows,
//! serialise them in the archive row format, parse them back, and reduce
//! them to month-country medians with the streaming P² estimator —
//! demonstrating that the analysis half only ever sees rows, never the
//! generator's targets.
//!
//! ```text
//! cargo run --example bandwidth_stagnation --release
//! ```

use lacnet::crisis::bandwidth;
use lacnet::crisis::operators::Operators;
use lacnet::mlab::aggregate::{Mode, MonthlyAggregator};
use lacnet::mlab::ndt;
use lacnet::types::rng::Rng;
use lacnet::types::{country, MonthStamp};

fn main() {
    let ops = Operators::generate(42);
    let root = Rng::seeded(42);
    let countries = [country::VE, country::UY, country::BR, country::CL];

    // 1. Generate one July of tests per year per country and serialise to
    //    the tab-separated archive format.
    let mut archive_text = String::new();
    for year in (2009..=2023).step_by(2) {
        for cc in countries {
            let mut rng = root.fork(&format!("demo/{cc}/{year}"));
            let tests =
                bandwidth::generate_month(&ops, cc, MonthStamp::new(year, 7), 2.0, &mut rng);
            for t in &tests {
                archive_text.push_str(&t.to_row());
                archive_text.push('\n');
            }
        }
    }
    let rows = ndt::parse_rows(&archive_text).expect("generated rows parse");
    println!(
        "parsed {} NDT rows ({} bytes of archive text)\n",
        rows.len(),
        archive_text.len()
    );

    // 2. Stream them through the month-country aggregator.
    let mut agg = MonthlyAggregator::new(Mode::Streaming);
    agg.observe_all(&rows);

    // 3. Print the medians: Venezuela's stagnation against its peers.
    println!("median download speed (Mbps), July of each year:");
    print!("{:>6}", "year");
    for cc in countries {
        print!("{:>8}", cc.as_str());
    }
    println!();
    for year in (2009..=2023).step_by(2) {
        print!("{year:>6}");
        for cc in countries {
            let v = agg
                .median_series(cc)
                .get(MonthStamp::new(year, 7))
                .unwrap_or(f64::NAN);
            print!("{v:>8.2}");
        }
        println!();
    }

    let ve_2013 = agg
        .median_series(country::VE)
        .get(MonthStamp::new(2013, 7))
        .unwrap_or(0.0);
    let ve_2021 = agg
        .median_series(country::VE)
        .get(MonthStamp::new(2021, 7))
        .unwrap_or(0.0);
    let uy_2021 = agg
        .median_series(country::UY)
        .get(MonthStamp::new(2021, 7))
        .unwrap_or(0.0);
    println!(
        "\nVenezuela {ve_2013:.2} → {ve_2021:.2} Mbps over eight years, \
         while Uruguay reached {uy_2021:.2} — the Fig. 11 stagnation."
    );
}
